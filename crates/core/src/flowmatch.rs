//! CFG path matching for statement-dots patterns.
//!
//! The tree matcher reads `A ... B` as "a gap in a statement list",
//! which silently mis-handles control flow: it matches across an early
//! `return` (the dots swallow the `if (x) return;` even though one path
//! never reaches `B`) and refuses patterns whose `B` sits inside both
//! arms of a branch. The paper's semantics — and upstream Coccinelle's —
//! is **"along every control-flow path"**, a CTL obligation checked over
//! the function CFG.
//!
//! This module supplies that semantics. A rule body whose pattern is a
//! top-level statement sequence with dots is *lowered*
//! ([`lower_pattern`]) into alternating [`FlowStep::Anchor`] /
//! [`FlowStep::Gap`] steps. Matching then runs per function
//! ([`find_flow_matches`]):
//!
//! 1. build the function's CFG (`cocci-flow`);
//! 2. every CFG node whose statement tree-matches the first anchor seeds
//!    a match attempt — expression-level matching *is* the node
//!    predicate, so metavariables, isomorphisms and constraints all keep
//!    working;
//! 3. each gap is discharged with [`cocci_flow::walk_gap`] under its
//!    quantifier — [`Quant::Forall`] by default and for `when strict`
//!    (every path from the anchor must reach a node matching the next
//!    anchor; first-hit semantics, loops cut at their back edges,
//!    no `when != e` violation, no escape through the function exit),
//!    [`Quant::Exists`] for `when exists` (one such path suffices,
//!    escaping/unclean paths are merely pruned);
//! 4. the hits on the different paths are bound into **witnesses**:
//!    hits whose metavariable bindings agree share one witness (their
//!    environments reconcile at the join), while hits that bind a
//!    metavariable differently *fork* — each binding-compatible group
//!    becomes its own `(env, pairs)` witness, and every witness drives
//!    its own rewrite (upstream Coccinelle's per-path witness
//!    semantics). Sibling witnesses forked from one anchor attempt are
//!    deduplicated by their bound source spans and share a
//!    [`MatchState::witness_group`] id so downstream overlap claiming
//!    keeps them together.
//!
//! Functions whose CFG exceeds [`MAX_CFG_NODES`] fall back to the tree
//! matcher for that function only, so pathological inputs degrade to the
//! old behaviour instead of blowing up.

use crate::env::Env;
use crate::matcher::{self, MatchCtx, MatchState, Pair, PairKind};
use crate::orchestrate::collect_seq_matches;
use cocci_cast::ast::*;
use cocci_cast::visit;
use cocci_flow::{build_cfg, walk_gap, Cfg, NodeId, NodeKind, Quant};
use cocci_source::Span;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

/// CFG size cap above which a function falls back to tree matching
/// ("the CFG can't be built" guard for pathological inputs).
pub const MAX_CFG_NODES: usize = 10_000;

/// Per-file cache of built CFGs, keyed by function span. The graphs
/// depend only on the target text — not on the rule being matched — so a
/// [`FileContext`](crate::FileContext) carries one of these and every
/// flow-routed rule applied to the file reuses the same graphs instead
/// of rebuilding them. `None` records an over-budget function (so the
/// budget check also happens once).
#[derive(Debug, Default)]
pub struct CfgCache {
    map: HashMap<Span, Option<Arc<Cfg>>>,
    builds: usize,
}

impl CfgCache {
    /// The cached CFG for `f`, building (and counting a build) on first
    /// use. `None` means the function exceeds [`MAX_CFG_NODES`].
    pub fn get_or_build(&mut self, f: &FunctionDef) -> Option<Arc<Cfg>> {
        self.map
            .entry(f.span)
            .or_insert_with(|| {
                self.builds += 1;
                let _span = cocci_trace::span(cocci_trace::Phase::CfgBuild);
                let cfg = build_cfg(f);
                if cfg.len() > MAX_CFG_NODES {
                    None
                } else {
                    Some(Arc::new(cfg))
                }
            })
            .clone()
    }

    /// How many CFGs were actually built (cache misses).
    pub fn builds(&self) -> usize {
        self.builds
    }
}

/// Cap on the witnesses one anchor attempt may fork. Each gap can
/// multiply bindings, so a crafted file with wide branching at every
/// gap could otherwise explode the combination cross-product inside a
/// single rule — where the per-file timeout (checked at rule
/// boundaries) cannot interrupt it. Forall attempts over the cap
/// refuse conservatively (no match, never a wrong rewrite); exists
/// attempts truncate (each witness is independently sound).
pub const MAX_WITNESSES_PER_ATTEMPT: usize = 256;

/// Per-search attempt accounting for kill-stage attribution
/// ([`crate::explain`]). An *attempt* is one CFG node that matched the
/// first anchor; it either completes (witnesses survive) or dies in a
/// gap walk (escape, `when !=` violation, no hit) or in witness binding
/// (reconciliation/cross-product refusal). Cells because [`FlowSearch::find`]
/// takes `&self`.
#[derive(Debug, Default)]
pub struct SearchProbe {
    /// CFG nodes that matched the first anchor (attempt starts).
    pub anchors: Cell<u64>,
    /// Attempts killed discharging a gap (escaped path, unclean
    /// `when !=` node, or no path reaching the next anchor).
    pub gap_kills: Cell<u64>,
    /// Attempts killed reconciling witness bindings (merge failure or
    /// cross-product refusal at [`MAX_WITNESSES_PER_ATTEMPT`]).
    pub binding_kills: Cell<u64>,
    /// Scratch: classification of the first failure inside the current
    /// attempt (reset per anchor seed).
    kill: Cell<KillClass>,
}

#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
enum KillClass {
    #[default]
    None,
    Gap,
    Binding,
}

impl SearchProbe {
    fn classify(&self, class: KillClass) {
        if self.kill.get() == KillClass::None {
            self.kill.set(class);
        }
    }
}

/// One step of a lowered statement-dots pattern.
#[derive(Debug, Clone)]
pub enum FlowStep {
    /// A concrete statement pattern, matched at a single CFG node with
    /// the ordinary tree matcher (boxed: a `Stmt` dwarfs the gap
    /// variant, and steps are only walked, never bulk-stored).
    Anchor(Box<Stmt>),
    /// Statement dots: a quantified gap to the next anchor.
    Gap {
        /// `when != e` constraints — no skipped node may contain a
        /// match of any of these expressions.
        when_not: Vec<Expr>,
        /// Pattern span of the `...` token (anchors the dots pair).
        span: Span,
        /// Path quantifier: `Forall` for the default and `when strict`
        /// readings, `Exists` for `when exists`.
        quant: Quant,
    },
}

/// A statement-dots pattern lowered for CFG matching: anchors strictly
/// alternating with gaps, starting and ending on an anchor.
#[derive(Debug, Clone)]
pub struct FlowPattern {
    /// The alternating steps (`Anchor, Gap, Anchor, [Gap, Anchor]…`).
    pub steps: Vec<FlowStep>,
    /// Whether any gap carries an *explicit* `when exists`/`when strict`
    /// quantifier. Such patterns never take the tree fallback for
    /// over-budget CFGs — the tree reading would silently discard the
    /// quantifier (over-matching for `strict`), so those functions are
    /// conservatively skipped instead.
    pub explicit_quant: bool,
}

impl FlowPattern {
    /// Whether any gap quantifies over *all* paths (`Forall`). Sibling
    /// witnesses of such a pattern jointly discharge the all-paths
    /// obligation and must stand or fall together; a pure-`exists`
    /// pattern's witnesses are independent (each surviving path
    /// suffices on its own).
    pub fn has_forall_gap(&self) -> bool {
        self.steps
            .iter()
            .any(|s| matches!(s, FlowStep::Gap { quant, .. } if *quant == Quant::Forall))
    }
}

/// Whether `s` is an anchor the CFG engine can match at a single node.
///
/// Only statements that lower to exactly one CFG node qualify; compound
/// statements (branches, loops, blocks, pattern groups) and statements
/// that may also match at the file top level (declarations, directives)
/// keep the tree route so no existing behaviour is lost.
fn is_simple_anchor(s: &Stmt) -> bool {
    matches!(
        s,
        Stmt::Expr { .. }
            | Stmt::Return { .. }
            | Stmt::Break { .. }
            | Stmt::Continue { .. }
            | Stmt::Goto { .. }
            | Stmt::Empty { .. }
    )
}

/// Lower a top-level statement sequence into a [`FlowPattern`].
///
/// Returns `None` when the pattern is not CFG-routable — no interior
/// dots, anchors the engine cannot pin to one node, guarded
/// leading/trailing dots — in which case the rule stays on the tree
/// matcher.
pub fn lower_pattern(pats: &[Stmt]) -> Option<FlowPattern> {
    // Leading/trailing unguarded dots are window padding under the tree
    // matcher's start-anywhere semantics; drop them. Guarded or
    // quantified ones carry constraints the lowering would lose —
    // refuse.
    let mut slice = pats;
    while let Some((
        Stmt::Dots {
            when_not, quant, ..
        },
        rest,
    )) = slice.split_first()
    {
        if !when_not.is_empty() || *quant != DotsQuant::Default {
            return None;
        }
        slice = rest;
    }
    while let Some((
        Stmt::Dots {
            when_not, quant, ..
        },
        rest,
    )) = slice.split_last()
    {
        if !when_not.is_empty() || *quant != DotsQuant::Default {
            return None;
        }
        slice = rest;
    }
    if slice.len() < 3 {
        return None; // need at least `A ... B`
    }
    let mut steps = Vec::with_capacity(slice.len());
    let mut explicit_quant = false;
    for (i, s) in slice.iter().enumerate() {
        let expect_anchor = i % 2 == 0;
        match s {
            Stmt::Dots {
                when_not,
                span,
                quant,
            } => {
                if expect_anchor {
                    return None; // consecutive dots
                }
                explicit_quant |= *quant != DotsQuant::Default;
                steps.push(FlowStep::Gap {
                    when_not: when_not.clone(),
                    span: *span,
                    quant: match quant {
                        DotsQuant::Exists => Quant::Exists,
                        DotsQuant::Default | DotsQuant::Strict => Quant::Forall,
                    },
                });
            }
            other => {
                if !expect_anchor || !is_simple_anchor(other) {
                    return None; // consecutive anchors or compound anchor
                }
                steps.push(FlowStep::Anchor(Box::new(other.clone())));
            }
        }
    }
    if slice.len().is_multiple_of(2) {
        return None; // must end on an anchor
    }
    Some(FlowPattern {
        steps,
        explicit_quant,
    })
}

/// Find all matches of a lowered pattern in `tu` under all-paths
/// semantics, seeding every attempt from `seed`. `tree_pats` is the
/// original pattern sequence, used for the per-function tree fallback
/// when a CFG exceeds the node budget.
///
/// One-shot convenience over [`FlowSearch`]; callers matching the same
/// file under several seed environments should build the search once.
pub fn find_flow_matches(
    ctx: &MatchCtx,
    fp: &FlowPattern,
    tree_pats: &[Stmt],
    tu: &TranslationUnit,
    seed: &Env,
) -> Vec<MatchState> {
    FlowSearch::new(fp, tree_pats, tu).find(ctx, seed)
}

/// A lowered pattern prepared against one translation unit: every
/// function's CFG and span→statement index built exactly once, reusable
/// across seed environments (a rule inheriting metavariables runs once
/// per exported environment — the CFGs depend only on the file).
pub struct FlowSearch<'t> {
    fp: &'t FlowPattern,
    tree_pats: &'t [Stmt],
    fns: Vec<FnData<'t>>,
    /// Next [`MatchState::witness_group`] id — unique across every
    /// `find` call on this search, so sibling witnesses of one anchor
    /// attempt stay grouped even when a rule runs under several seed
    /// environments.
    next_group: Cell<u32>,
    /// Attempt accounting across every `find` call on this search.
    probe: SearchProbe,
}

/// Per-function precomputed matching substrate. `cfg` is `None` when
/// the function is over the node budget (tree fallback).
struct FnData<'t> {
    f: &'t FunctionDef,
    cfg: Option<Arc<Cfg>>,
    by_span: HashMap<Span, &'t Stmt>,
}

impl<'t> FlowSearch<'t> {
    /// Build the per-function CFGs and span indexes for `tu`.
    pub fn new(fp: &'t FlowPattern, tree_pats: &'t [Stmt], tu: &'t TranslationUnit) -> Self {
        let mut cache = CfgCache::default();
        Self::with_cache(fp, tree_pats, tu, &mut cache)
    }

    /// Like [`FlowSearch::new`], but CFGs come from (and land in) a
    /// shared per-file [`CfgCache`]: N rules applied to the same parse
    /// build each function's graph once instead of N times. The span
    /// index is rebuilt per search (it borrows this search's `tu`).
    pub fn with_cache(
        fp: &'t FlowPattern,
        tree_pats: &'t [Stmt],
        tu: &'t TranslationUnit,
        cache: &mut CfgCache,
    ) -> Self {
        let mut fns = Vec::new();
        visit::walk_functions(tu, &mut |f| {
            let cfg = cache.get_or_build(f);
            if cfg.is_none() {
                fns.push(FnData {
                    f,
                    cfg: None,
                    by_span: HashMap::new(),
                });
                return;
            }
            let mut by_span = HashMap::new();
            for s in &f.body.stmts {
                visit::walk_stmt(s, &mut |st| {
                    by_span.insert(st.span(), st);
                });
            }
            fns.push(FnData { f, cfg, by_span });
        });
        FlowSearch {
            fp,
            tree_pats,
            fns,
            next_group: Cell::new(1),
            probe: SearchProbe::default(),
        }
    }

    /// Attempt accounting accumulated over every `find` call so far.
    pub fn probe(&self) -> &SearchProbe {
        &self.probe
    }

    /// All match witnesses across the prepared functions for one seed
    /// environment (an anchor attempt whose paths bind differently
    /// yields several sibling witnesses sharing a `witness_group`).
    pub fn find(&self, ctx: &MatchCtx, seed: &Env) -> Vec<MatchState> {
        let mut out = Vec::new();
        for data in &self.fns {
            match &data.cfg {
                Some(cfg) => {
                    let m = FnMatcher {
                        ctx,
                        fp: self.fp,
                        cfg: cfg.as_ref(),
                        by_span: &data.by_span,
                        probe: &self.probe,
                    };
                    m.run(seed, &self.next_group, &mut out);
                }
                // Over-budget CFG: the tree fallback reads dots as plain
                // sequence gaps, which would silently discard an
                // explicit `when exists`/`when strict` — skip such
                // functions (conservative: no match, never a wrong
                // rewrite) and degrade only unquantified patterns.
                None if self.fp.explicit_quant => {}
                None => tree_fallback(ctx, self.tree_pats, data.f, seed, &mut out),
            }
        }
        out
    }
}

/// Tree-sequence matching of one function's blocks — the behaviour a
/// flow-routed rule degrades to when the CFG is out of budget.
fn tree_fallback(
    ctx: &MatchCtx,
    pats: &[Stmt],
    f: &FunctionDef,
    seed: &Env,
    out: &mut Vec<MatchState>,
) {
    let mut blocks: Vec<&Block> = vec![&f.body];
    for s in &f.body.stmts {
        visit::walk_stmt(s, &mut |st| {
            if let Stmt::Block(inner) = st {
                blocks.push(inner);
            }
        });
    }
    for block in blocks {
        collect_seq_matches(ctx, pats, &block.stmts, block.span, seed, out);
    }
}

/// Per-function matcher state: the CFG plus a span-indexed view of the
/// function's statements (CFG nodes carry spans, not AST pointers).
struct FnMatcher<'a> {
    ctx: &'a MatchCtx<'a>,
    fp: &'a FlowPattern,
    cfg: &'a Cfg,
    by_span: &'a HashMap<Span, &'a Stmt>,
    probe: &'a SearchProbe,
}

impl<'a> FnMatcher<'a> {
    /// The source statement a CFG node stands for, when it stands for
    /// exactly one (entry/exit/join nodes stand for none, branch nodes
    /// for a compound construct anchors never pin).
    fn stmt_at(&self, n: NodeId) -> Option<&'a Stmt> {
        match self.cfg.kind(n) {
            NodeKind::Stmt | NodeKind::Directive => self.by_span.get(&self.cfg.span(n)).copied(),
            _ => None,
        }
    }

    /// The expressions a node evaluates, for `when !=` scans: a simple
    /// statement contributes its whole expression tree, a branch node
    /// only its condition/scrutinee (the arms are separate nodes).
    fn violates_when(&self, n: NodeId, when_not: &[Expr], st: &MatchState) -> bool {
        let check_expr = |e: &Expr| -> bool {
            let mut hit = false;
            visit::walk_expr(e, &mut |sub| {
                if !hit {
                    for forbidden in when_not {
                        let mut probe = st.clone();
                        if matcher::match_expr(self.ctx, forbidden, sub, &mut probe) {
                            hit = true;
                            break;
                        }
                    }
                }
            });
            hit
        };
        match self.cfg.kind(n) {
            NodeKind::Stmt | NodeKind::Directive => match self.stmt_at(n) {
                Some(s) => {
                    let mut hit = false;
                    visit::deep_stmt_exprs(s, &mut |sub| {
                        if !hit {
                            for forbidden in when_not {
                                let mut probe = st.clone();
                                if matcher::match_expr(self.ctx, forbidden, sub, &mut probe) {
                                    hit = true;
                                    break;
                                }
                            }
                        }
                    });
                    hit
                }
                None => false,
            },
            NodeKind::Branch => match self.by_span.get(&self.cfg.span(n)).copied() {
                Some(Stmt::If { cond, .. })
                | Some(Stmt::While { cond, .. })
                | Some(Stmt::DoWhile { cond, .. }) => check_expr(cond),
                Some(Stmt::For { cond, .. }) => cond.as_ref().map(&check_expr).unwrap_or(false),
                Some(Stmt::Switch { scrutinee, .. }) => check_expr(scrutinee),
                _ => false,
            },
            _ => false,
        }
    }

    /// Seed an attempt at every node matching the first anchor. An
    /// attempt that forks yields several sibling witnesses; they are
    /// deduplicated by bound source spans and stamped with a shared
    /// `witness_group` id.
    fn run(&self, seed: &Env, next_group: &Cell<u32>, out: &mut Vec<MatchState>) {
        let FlowStep::Anchor(first) = &self.fp.steps[0] else {
            return;
        };
        for n in self.cfg.nodes() {
            let Some(s) = self.stmt_at(n) else { continue };
            let mut st = MatchState {
                env: seed.clone(),
                ..Default::default()
            };
            if !matcher::match_stmt(self.ctx, first, s, &mut st) {
                continue;
            }
            self.probe.anchors.set(self.probe.anchors.get() + 1);
            self.probe.kill.set(KillClass::None);
            let mut witnesses = self.advance(1, n, st);
            if witnesses.is_empty() {
                // Classified by the first failure site inside the
                // attempt; an unclassified refusal is a gap death (the
                // advance either discharges a gap or reconciles
                // bindings — nothing else empties the witness set).
                match self.probe.kill.get() {
                    KillClass::Binding => self
                        .probe
                        .binding_kills
                        .set(self.probe.binding_kills.get() + 1),
                    _ => self.probe.gap_kills.set(self.probe.gap_kills.get() + 1),
                }
            }
            dedup_witnesses(&mut witnesses);
            // Every CFG witness gets its attempt's id — siblings share
            // it (downstream group handling), and a non-zero id is what
            // marks a match as a path witness at all (tree-fallback
            // matches keep 0).
            if !witnesses.is_empty() {
                if witnesses.len() > 1 {
                    // Siblings beyond the first are forked per-path
                    // witnesses — the telemetry for join-fork pressure.
                    cocci_trace::count(
                        cocci_trace::Counter::WitnessesForked,
                        (witnesses.len() - 1) as u64,
                    );
                }
                let id = next_group.get();
                next_group.set(id.wrapping_add(1).max(1));
                for w in &mut witnesses {
                    w.witness_group = id;
                }
            }
            out.extend(witnesses);
        }
    }

    /// Discharge steps `i..` starting from the anchor matched at `from`.
    /// Returns the completed witnesses — empty when the gap fails (a
    /// path escapes or violates a `when !=` under `Forall`, or no path
    /// reaches the next anchor), one witness when every hit binds
    /// consistently, several when paths bind a metavariable differently
    /// and the match forks.
    fn advance(&self, i: usize, from: NodeId, st: MatchState) -> Vec<MatchState> {
        if i >= self.fp.steps.len() {
            return vec![st];
        }
        let FlowStep::Gap {
            when_not,
            span,
            quant,
        } = &self.fp.steps[i]
        else {
            unreachable!("lowered steps alternate anchor/gap");
        };
        let FlowStep::Anchor(next) = &self.fp.steps[i + 1] else {
            unreachable!("lowered steps end on an anchor");
        };
        let starts: Vec<NodeId> = self.cfg.succs(from).iter().map(|&(s, _)| s).collect();
        let Ok(mut hits) = walk_gap(
            self.cfg,
            &starts,
            *quant,
            &mut |m| {
                self.stmt_at(m)
                    .map(|s| {
                        let mut probe = st.clone();
                        matcher::match_stmt(self.ctx, next, s, &mut probe)
                    })
                    .unwrap_or(false)
            },
            &mut |m| when_not.is_empty() || !self.violates_when(m, when_not, &st),
        ) else {
            self.probe.classify(KillClass::Gap);
            return Vec::new();
        };
        // Deterministic source order for binding and rewriting.
        hits.sort_by_key(|&m| self.cfg.span(m).start);
        let from_end = self.stmt_at(from).map(|s| s.span().end).unwrap_or(0);
        // The dots pair spans the contiguous source region between the
        // anchor and the earliest hit *after* it. Hits that precede the
        // anchor in the source (loop back-edge hits) must not collapse
        // the span — they are unreachable by forward text anyway; with
        // no forward hit at all the region is genuinely empty.
        let dots_src = |hit_starts: &mut dyn Iterator<Item = u32>| -> Span {
            match hit_starts.filter(|&s| s >= from_end).min() {
                Some(s) => Span::new(from_end, s),
                None => Span::empty(from_end),
            }
        };

        if *quant == Quant::Exists {
            // Existential gap: each surviving path's hit is its own
            // witness — one succeeding path suffices, so a hit whose
            // continuation fails is dropped, not fatal. Truncating at
            // the witness cap is sound for the same reason.
            let mut out = Vec::new();
            for m in hits {
                if out.len() >= MAX_WITNESSES_PER_ATTEMPT {
                    break;
                }
                let Some(s) = self.stmt_at(m) else { continue };
                let mut w = st.clone();
                if !matcher::match_stmt(self.ctx, next, s, &mut w) {
                    continue;
                }
                w.pairs.push(Pair {
                    pat: *span,
                    src: dots_src(&mut std::iter::once(self.cfg.span(m).start)),
                    kind: PairKind::Dots,
                });
                out.extend(self.advance(i + 2, m, w));
            }
            out.truncate(MAX_WITNESSES_PER_ATTEMPT);
            return out;
        }

        // Forall gap: partition the hits into binding-compatible groups.
        // Hits whose bindings reconcile share one witness (the old
        // join-point reconciliation); a hit no existing group accepts
        // forks a fresh witness from the pre-gap state.
        let mut groups: Vec<(MatchState, Vec<NodeId>)> = Vec::new();
        'hits: for m in hits {
            let Some(s) = self.stmt_at(m) else {
                self.probe.classify(KillClass::Gap);
                return Vec::new(); // sat only holds on statement nodes
            };
            for (gst, gh) in &mut groups {
                let mut attempt = gst.clone();
                if matcher::match_stmt(self.ctx, next, s, &mut attempt) {
                    *gst = attempt;
                    gh.push(m);
                    continue 'hits;
                }
            }
            let mut fresh = st.clone();
            if !matcher::match_stmt(self.ctx, next, s, &mut fresh) {
                // Unreachable (the sat predicate bound this hit from
                // `st`); refuse conservatively rather than drop a path.
                self.probe.classify(KillClass::Gap);
                return Vec::new();
            }
            groups.push((fresh, vec![m]));
        }

        let mut out = Vec::new();
        for (mut gst, gh) in groups {
            gst.pairs.push(Pair {
                pat: *span,
                src: dots_src(&mut gh.iter().map(|&m| self.cfg.span(m).start)),
                kind: PairKind::Dots,
            });
            let base_pairs = gst.pairs.len();
            let base_choices = gst.choices.len();
            // The remaining steps must hold from every hit of the
            // group. Advance from each hit *independently* — a deeper
            // gap may fork per-path witnesses there, and binding one
            // hit's fork before walking the next would make the other
            // hit's alternative paths unreachable.
            let mut per_hit: Vec<Vec<MatchState>> = Vec::with_capacity(gh.len());
            for &m in &gh {
                let conts = self.advance(i + 2, m, gst.clone());
                if conts.is_empty() {
                    // Dead hit: real control-flow paths whose remaining
                    // obligation failed — under the all-paths reading
                    // the *whole* attempt refuses (dropping just this
                    // group would silently rewrite a subset of arms).
                    return Vec::new();
                }
                per_hit.push(conts);
            }
            // Combine one continuation per hit where the bindings
            // reconcile: each combined witness then covers every hit's
            // paths (the reconciled join, possibly several bindings).
            let mut combined = per_hit[0].clone();
            for conts in &per_hit[1..] {
                let mut next = Vec::new();
                for c in &combined {
                    for w in conts {
                        if let Some(m) = merge_witnesses(c, w, base_pairs, base_choices) {
                            next.push(m);
                        }
                    }
                    if next.len() > MAX_WITNESSES_PER_ATTEMPT {
                        // Cross-product blow-up on a pathological
                        // input: refuse the attempt (a forall witness
                        // subset cannot be soundly truncated).
                        self.probe.classify(KillClass::Binding);
                        return Vec::new();
                    }
                }
                combined = next;
                if combined.is_empty() {
                    break;
                }
            }
            if !combined.is_empty() {
                out.extend(combined);
            } else {
                // No single binding covers every hit's continuation —
                // fork per hit instead: the sibling witnesses jointly
                // cover all paths (each hit's continuation on its own
                // arm).
                for conts in per_hit {
                    out.extend(conts);
                }
            }
            if out.len() > MAX_WITNESSES_PER_ATTEMPT {
                // Pathological fan-out: refuse the attempt (a forall
                // witness subset cannot be soundly truncated).
                self.probe.classify(KillClass::Binding);
                return Vec::new();
            }
        }
        out
    }
}

/// Merge two witnesses that extend the same base state (`a` and `b`
/// each carry the base's pairs/choices as a prefix of the given
/// lengths). Fails when their metavariable bindings disagree.
fn merge_witnesses(
    a: &MatchState,
    b: &MatchState,
    base_pairs: usize,
    base_choices: usize,
) -> Option<MatchState> {
    let mut merged = a.clone();
    for (k, v) in b.env.iter() {
        match merged.env.get(k) {
            Some(existing) => {
                if !matcher::value_eq(existing, v) {
                    return None;
                }
            }
            None => merged.env.bind(k, v.clone()),
        }
    }
    merged
        .pairs
        .extend(b.pairs.iter().skip(base_pairs).cloned());
    merged
        .choices
        .extend(b.choices.iter().skip(base_choices).cloned());
    Some(merged)
}

/// Drop witnesses whose correspondence pairs cover exactly the same
/// pattern→source spans as an earlier sibling — forking can reach the
/// same rewrite through different binding orders, and duplicate
/// witnesses would double-count matches (their edits are already
/// idempotent).
fn dedup_witnesses(witnesses: &mut Vec<MatchState>) {
    if witnesses.len() < 2 {
        return;
    }
    let key = |w: &MatchState| -> Vec<(u32, u32, u32, u32)> {
        let mut k: Vec<(u32, u32, u32, u32)> = w
            .pairs
            .iter()
            .map(|p| (p.pat.start, p.pat.end, p.src.start, p.src.end))
            .collect();
        k.sort_unstable();
        k
    };
    let mut seen: Vec<Vec<(u32, u32, u32, u32)>> = Vec::new();
    witnesses.retain(|w| {
        let k = key(w);
        if seen.contains(&k) {
            false
        } else {
            seen.push(k);
            true
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocci_cast::parser::{
        parse_statements, parse_translation_unit, MetaKind, MetaLookup, NoMeta, ParseOptions,
    };
    use cocci_smpl::{MetaDecl, MetaDeclKind};
    use std::collections::HashMap as Map;

    struct DeclsLookup<'a>(&'a [MetaDecl]);
    impl MetaLookup for DeclsLookup<'_> {
        fn kind(&self, name: &str) -> Option<MetaKind> {
            self.0
                .iter()
                .find(|d| d.name == name)
                .map(|d| d.kind.parse_kind())
        }
    }

    fn decls(list: &[(&str, MetaDeclKind)]) -> Vec<MetaDecl> {
        list.iter()
            .map(|(n, k)| MetaDecl {
                name: n.to_string(),
                kind: k.clone(),
                constraint: None,
                inherited_from: None,
            })
            .collect()
    }

    fn lowered(pat: &str, ds: &[MetaDecl]) -> Option<FlowPattern> {
        let pats = parse_statements(pat, ParseOptions::pattern(), &DeclsLookup(ds)).unwrap();
        lower_pattern(&pats)
    }

    fn flow_match(pat: &str, src: &str, ds: Vec<MetaDecl>) -> Vec<MatchState> {
        let pats = parse_statements(pat, ParseOptions::pattern(), &DeclsLookup(&ds)).unwrap();
        let fp = lower_pattern(&pats).expect("pattern lowers");
        let tu = parse_translation_unit(src, ParseOptions::c(), &NoMeta).unwrap();
        let regexes = Map::new();
        let ctx = MatchCtx {
            file: "t.c",
            src,
            decls: &ds,
            regexes: &regexes,
        };
        find_flow_matches(&ctx, &fp, &pats, &tu, &Env::new())
    }

    #[test]
    fn lowering_accepts_simple_alternation() {
        let fp = lowered("a(); ... b();", &[]).unwrap();
        assert_eq!(fp.steps.len(), 3);
        assert!(matches!(fp.steps[1], FlowStep::Gap { .. }));
        let fp = lowered("a(); ... b(); ... return;", &[]).unwrap();
        assert_eq!(fp.steps.len(), 5);
    }

    #[test]
    fn lowering_refuses_non_routable_shapes() {
        // No interior dots.
        assert!(lowered("a(); b();", &[]).is_none());
        // Consecutive anchors around the dots.
        assert!(lowered("a(); b(); ... c();", &[]).is_none());
        // Compound anchor.
        assert!(lowered("a(); ... while (x) { b(); }", &[]).is_none());
        // Declarations keep the tree route (they can match top level).
        assert!(lowered("int x = 0; ... b();", &[]).is_none());
        // Statement metavariables keep the tree route too.
        let ds = decls(&[("A", MetaDeclKind::Statement)]);
        assert!(lowered("A ... b();", &ds).is_none());
        // Guarded leading dots would lose their constraint.
        assert!(lowered("... when != g() a(); ... b();", &[]).is_none());
        // Quantified leading dots would lose their quantifier too.
        assert!(lowered("... when exists a(); ... b();", &[]).is_none());
    }

    #[test]
    fn lowering_trims_window_padding_dots() {
        let fp = lowered("... a(); ... b(); ...", &[]).unwrap();
        assert_eq!(fp.steps.len(), 3);
    }

    #[test]
    fn all_paths_refuses_early_return() {
        let ms = flow_match(
            "a(); ... b();",
            "void f(int x) { a(); if (x) return; b(); }",
            vec![],
        );
        assert!(ms.is_empty(), "escaping path must kill the match");
    }

    #[test]
    fn cross_branch_hits_reconcile() {
        let ds = decls(&[("e", MetaDeclKind::Expression)]);
        let ms = flow_match(
            "a(); ... b(e);",
            "void f(int x) { a(); if (x) { b(1); } else { b(1); } done(); }",
            ds,
        );
        assert_eq!(ms.len(), 1);
        // Both hits recorded as pairs of the same pattern statement.
        let stmt_pairs = ms[0]
            .pairs
            .iter()
            .filter(|p| p.kind == PairKind::Stmt)
            .count();
        assert!(stmt_pairs >= 3, "anchor + two hits, got {stmt_pairs}");
    }

    #[test]
    fn inconsistent_bindings_fork_per_path_witnesses() {
        let ds = decls(&[("e", MetaDeclKind::Expression)]);
        let ms = flow_match(
            "a(); ... b(e);",
            "void f(int x) { a(); if (x) { b(1); } else { b(2); } done(); }",
            ds,
        );
        assert_eq!(ms.len(), 2, "one witness per binding of e");
        // Sibling witnesses share one non-zero group id, so downstream
        // overlap claiming keeps both.
        assert_ne!(ms[0].witness_group, 0);
        assert_eq!(ms[0].witness_group, ms[1].witness_group);
        // Each witness pairs the post-gap anchor with its own branch
        // site — that is what lets both arms rewrite.
        let own_site = |m: &MatchState| {
            m.pairs
                .iter()
                .filter(|p| p.kind == PairKind::Stmt)
                .map(|p| p.src)
                .max_by_key(|s| s.start)
                .unwrap()
        };
        assert_ne!(own_site(&ms[0]), own_site(&ms[1]));
    }

    #[test]
    fn forked_group_with_failed_continuation_refuses_whole_match() {
        // Gap 1 forks on e (b(1) vs b(2)); the e=2 group's continuation
        // then fails — the else path never reaches c(2). Those are real
        // paths with an unmet obligation, so under the all-paths reading
        // the whole attempt must refuse, not rewrite just the then arm.
        let ds = decls(&[("e", MetaDeclKind::Expression)]);
        let ms = flow_match(
            "a(); ... b(e); ... c(e);",
            "void f(int x) { a(); if (x) { b(1); c(1); } else { b(2); } done(); }",
            ds.clone(),
        );
        assert!(ms.is_empty(), "a dead forked group must kill the attempt");
        // When both groups complete, both witnesses survive.
        let ms = flow_match(
            "a(); ... b(e); ... c(e);",
            "void f(int x) { a(); if (x) { b(1); c(1); } else { b(2); c(2); } }",
            ds,
        );
        assert_eq!(ms.len(), 2, "both forked chains complete");
    }

    #[test]
    fn later_gap_forks_combine_across_reconciled_hits() {
        let ds = decls(&[("e", MetaDeclKind::Expression)]);
        // The first gap's two b() hits reconcile into one group; the
        // second gap then forks on e. Each binding must combine across
        // *both* b() hits (binding one hit's fork before walking the
        // other would make the alternative arm unreachable).
        let ms = flow_match(
            "a(); ... b(); ... c(e);",
            "void f(int x, int y) { a(); if (x) { b(); } else { b(); } if (y) { c(p); } else { c(q); } }",
            ds.clone(),
        );
        assert_eq!(ms.len(), 2, "e forks at the second gap, not refused");
        // When no single binding covers every hit's continuation, the
        // group forks per hit instead: one witness per arm.
        let ms = flow_match(
            "a(); ... b(); ... c(e);",
            "void f(int x) { a(); if (x) { b(); c(p); } else { b(); c(q); } }",
            ds,
        );
        assert_eq!(ms.len(), 2, "one witness per arm's continuation");
    }

    #[test]
    fn pre_bound_conflict_still_refuses() {
        // `e` is pinned at the first anchor, so the else arm's b(r) is
        // not a hit at all: that path escapes and kills the match — the
        // forking semantics only forks on *unbound* disagreement.
        let ds = decls(&[("e", MetaDeclKind::Expression)]);
        let ms = flow_match(
            "a(e); ... b(e);",
            "void f(int x) { a(p); if (x) { b(p); } else { b(r); } }",
            ds,
        );
        assert!(ms.is_empty(), "the b(r) path never reaches a hit");
    }

    #[test]
    fn exists_dots_allow_escaping_paths() {
        let fp = lowered("a(); ... when exists b();", &[]).unwrap();
        let FlowStep::Gap { quant, .. } = &fp.steps[1] else {
            panic!("step 1 is the gap");
        };
        assert_eq!(*quant, Quant::Exists);
        let src = "void f(int x) { a(); if (x) return; b(); }";
        let ms = flow_match("a(); ... when exists b();", src, vec![]);
        assert_eq!(ms.len(), 1, "some path reaches b()");
        // The default all-paths reading refuses the very same gap.
        let ms = flow_match("a(); ... b();", src, vec![]);
        assert!(ms.is_empty());
    }

    #[test]
    fn strict_dots_spell_the_default_all_paths_reading() {
        let fp = lowered("a(); ... when strict b();", &[]).unwrap();
        let FlowStep::Gap { quant, .. } = &fp.steps[1] else {
            panic!("step 1 is the gap");
        };
        assert_eq!(*quant, Quant::Forall);
        let ms = flow_match(
            "a(); ... when strict b();",
            "void f(int x) { a(); if (x) return; b(); }",
            vec![],
        );
        assert!(ms.is_empty(), "strict refuses the escaping path");
    }

    #[test]
    fn exists_forks_one_witness_per_surviving_path() {
        let ds = decls(&[("e", MetaDeclKind::Expression)]);
        let ms = flow_match(
            "a(); ... when exists b(e);",
            "void f(int x) { a(); if (x) { b(1); } else { b(2); } }",
            ds,
        );
        assert_eq!(ms.len(), 2, "each surviving path is its own witness");
        assert_ne!(ms[0].witness_group, 0);
        assert_eq!(ms[0].witness_group, ms[1].witness_group);
    }

    #[test]
    fn over_budget_function_skips_quantified_patterns() {
        // A function whose CFG exceeds the node budget takes the tree
        // fallback — but only for unquantified patterns; an explicit
        // `when strict`/`when exists` must not silently become a plain
        // sequence gap (over-matching, for strict).
        let mut body = String::from("a(); if (x) return; ");
        for i in 0..MAX_CFG_NODES {
            body.push_str(&format!("f{}(); ", i % 7));
        }
        body.push_str("b();");
        let src = format!("void f(int x) {{ {body} }}");
        let ms = flow_match("a(); ... b();", &src, vec![]);
        assert_eq!(ms.len(), 1, "unquantified pattern degrades to tree");
        let ms = flow_match("a(); ... when strict b();", &src, vec![]);
        assert!(ms.is_empty(), "strict must not take the tree reading");
        let ms = flow_match("a(); ... when exists b();", &src, vec![]);
        assert!(ms.is_empty(), "exists skips over-budget functions too");
    }

    #[test]
    fn back_edge_hits_keep_the_forward_dots_region() {
        // The do-while body's b() is reached through the loop back edge
        // and *precedes* the anchor in the source; the post-loop b() is
        // the forward hit. The dots span must cover the forward region
        // (anchor end → forward hit), not collapse to empty because the
        // back-edge hit's offset is smaller.
        let src = "void f(int n) { do { b(); a(); } while (n); b(); }";
        let ms = flow_match("a(); ... b();", src, vec![]);
        assert_eq!(ms.len(), 1);
        let dots: Vec<_> = ms[0]
            .pairs
            .iter()
            .filter(|p| p.kind == PairKind::Dots)
            .collect();
        assert_eq!(dots.len(), 1);
        let d = dots[0].src;
        assert!(!d.is_empty(), "back-edge hit collapsed the dots span");
        let text = &src[d.start as usize..d.end as usize];
        assert!(
            text.contains("while (n)"),
            "span covers the loop tail: {text:?}"
        );
    }

    #[test]
    fn when_not_checks_skipped_nodes_and_branch_conditions() {
        // Violation inside a skipped simple statement.
        let ms = flow_match(
            "a(); ... when != g() b();",
            "void f(void) { a(); g(); b(); }",
            vec![],
        );
        assert!(ms.is_empty());
        // Violation inside a skipped branch condition.
        let ms = flow_match(
            "a(); ... when != g() b();",
            "void f(int x) { a(); if (g()) { x = 1; } b(); }",
            vec![],
        );
        assert!(ms.is_empty());
        // Clean gap matches.
        let ms = flow_match(
            "a(); ... when != g() b();",
            "void f(void) { a(); mid(); b(); }",
            vec![],
        );
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn loop_body_hit_fails_zero_iteration_path() {
        let ms = flow_match(
            "a(); ... b();",
            "void f(int n) { a(); while (n) { b(); } }",
            vec![],
        );
        assert!(ms.is_empty(), "zero-iteration path escapes without b()");
        let ms = flow_match(
            "a(); ... b();",
            "void f(int n) { a(); while (n) { step(); } b(); }",
            vec![],
        );
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn three_anchor_chain() {
        let ms = flow_match(
            "a(); ... b(); ... c();",
            "void f(int x) { a(); if (x) { b(); } else { b(); } c(); }",
            vec![],
        );
        assert_eq!(ms.len(), 1);
        let ms = flow_match(
            "a(); ... b(); ... c();",
            "void f(int x) { a(); if (x) { b(); c(); } else { b(); } done(); }",
            vec![],
        );
        assert!(ms.is_empty(), "else-branch b() never reaches c()");
    }
}
