//! CFG path matching for statement-dots patterns.
//!
//! The tree matcher reads `A ... B` as "a gap in a statement list",
//! which silently mis-handles control flow: it matches across an early
//! `return` (the dots swallow the `if (x) return;` even though one path
//! never reaches `B`) and refuses patterns whose `B` sits inside both
//! arms of a branch. The paper's semantics — and upstream Coccinelle's —
//! is **"along every control-flow path"**, a CTL obligation checked over
//! the function CFG.
//!
//! This module supplies that semantics. A rule body whose pattern is a
//! top-level statement sequence with dots is *lowered*
//! ([`lower_pattern`]) into alternating [`FlowStep::Anchor`] /
//! [`FlowStep::Gap`] steps. Matching then runs per function
//! ([`find_flow_matches`]):
//!
//! 1. build the function's CFG (`cocci-flow`);
//! 2. every CFG node whose statement tree-matches the first anchor seeds
//!    a match attempt — expression-level matching *is* the node
//!    predicate, so metavariables, isomorphisms and constraints all keep
//!    working;
//! 3. each gap is discharged with [`cocci_flow::walk_gap`] under
//!    [`Quant::Forall`]: every path from the anchor must reach a node
//!    matching the next anchor (first-hit semantics, loops cut at their
//!    back edges) without crossing a `when != e` violation or escaping
//!    through the function exit;
//! 4. the hits on the different paths are bound into **one** match
//!    state, reconciling metavariable environments at join points: a
//!    hit that binds a metavariable inconsistently with its siblings
//!    kills the whole match (conservative — upstream would fork
//!    per-path witnesses).
//!
//! Functions whose CFG exceeds [`MAX_CFG_NODES`] fall back to the tree
//! matcher for that function only, so pathological inputs degrade to the
//! old behaviour instead of blowing up.

use crate::env::Env;
use crate::matcher::{self, MatchCtx, MatchState, Pair, PairKind};
use crate::orchestrate::collect_seq_matches;
use cocci_cast::ast::*;
use cocci_cast::visit;
use cocci_flow::{build_cfg, walk_gap, Cfg, NodeId, NodeKind, Quant};
use cocci_source::Span;
use std::collections::HashMap;

/// CFG size cap above which a function falls back to tree matching
/// ("the CFG can't be built" guard for pathological inputs).
pub const MAX_CFG_NODES: usize = 10_000;

/// One step of a lowered statement-dots pattern.
#[derive(Debug, Clone)]
pub enum FlowStep {
    /// A concrete statement pattern, matched at a single CFG node with
    /// the ordinary tree matcher (boxed: a `Stmt` dwarfs the gap
    /// variant, and steps are only walked, never bulk-stored).
    Anchor(Box<Stmt>),
    /// Statement dots: an all-paths gap to the next anchor.
    Gap {
        /// `when != e` constraints — no skipped node may contain a
        /// match of any of these expressions.
        when_not: Vec<Expr>,
        /// Pattern span of the `...` token (anchors the dots pair).
        span: Span,
    },
}

/// A statement-dots pattern lowered for CFG matching: anchors strictly
/// alternating with gaps, starting and ending on an anchor.
#[derive(Debug, Clone)]
pub struct FlowPattern {
    /// The alternating steps (`Anchor, Gap, Anchor, [Gap, Anchor]…`).
    pub steps: Vec<FlowStep>,
}

/// Whether `s` is an anchor the CFG engine can match at a single node.
///
/// Only statements that lower to exactly one CFG node qualify; compound
/// statements (branches, loops, blocks, pattern groups) and statements
/// that may also match at the file top level (declarations, directives)
/// keep the tree route so no existing behaviour is lost.
fn is_simple_anchor(s: &Stmt) -> bool {
    matches!(
        s,
        Stmt::Expr { .. }
            | Stmt::Return { .. }
            | Stmt::Break { .. }
            | Stmt::Continue { .. }
            | Stmt::Goto { .. }
            | Stmt::Empty { .. }
    )
}

/// Lower a top-level statement sequence into a [`FlowPattern`].
///
/// Returns `None` when the pattern is not CFG-routable — no interior
/// dots, anchors the engine cannot pin to one node, guarded
/// leading/trailing dots — in which case the rule stays on the tree
/// matcher.
pub fn lower_pattern(pats: &[Stmt]) -> Option<FlowPattern> {
    // Leading/trailing unguarded dots are window padding under the tree
    // matcher's start-anywhere semantics; drop them. Guarded ones carry
    // constraints the lowering would lose — refuse.
    let mut slice = pats;
    while let Some((Stmt::Dots { when_not, .. }, rest)) = slice.split_first() {
        if !when_not.is_empty() {
            return None;
        }
        slice = rest;
    }
    while let Some((Stmt::Dots { when_not, .. }, rest)) = slice.split_last() {
        if !when_not.is_empty() {
            return None;
        }
        slice = rest;
    }
    if slice.len() < 3 {
        return None; // need at least `A ... B`
    }
    let mut steps = Vec::with_capacity(slice.len());
    for (i, s) in slice.iter().enumerate() {
        let expect_anchor = i % 2 == 0;
        match s {
            Stmt::Dots { when_not, span } => {
                if expect_anchor {
                    return None; // consecutive dots
                }
                steps.push(FlowStep::Gap {
                    when_not: when_not.clone(),
                    span: *span,
                });
            }
            other => {
                if !expect_anchor || !is_simple_anchor(other) {
                    return None; // consecutive anchors or compound anchor
                }
                steps.push(FlowStep::Anchor(Box::new(other.clone())));
            }
        }
    }
    if slice.len().is_multiple_of(2) {
        return None; // must end on an anchor
    }
    Some(FlowPattern { steps })
}

/// Find all matches of a lowered pattern in `tu` under all-paths
/// semantics, seeding every attempt from `seed`. `tree_pats` is the
/// original pattern sequence, used for the per-function tree fallback
/// when a CFG exceeds the node budget.
///
/// One-shot convenience over [`FlowSearch`]; callers matching the same
/// file under several seed environments should build the search once.
pub fn find_flow_matches(
    ctx: &MatchCtx,
    fp: &FlowPattern,
    tree_pats: &[Stmt],
    tu: &TranslationUnit,
    seed: &Env,
) -> Vec<MatchState> {
    FlowSearch::new(fp, tree_pats, tu).find(ctx, seed)
}

/// A lowered pattern prepared against one translation unit: every
/// function's CFG and span→statement index built exactly once, reusable
/// across seed environments (a rule inheriting metavariables runs once
/// per exported environment — the CFGs depend only on the file).
pub struct FlowSearch<'t> {
    fp: &'t FlowPattern,
    tree_pats: &'t [Stmt],
    fns: Vec<FnData<'t>>,
}

/// Per-function precomputed matching substrate. `cfg` is `None` when
/// the function is over the node budget (tree fallback).
struct FnData<'t> {
    f: &'t FunctionDef,
    cfg: Option<Cfg>,
    by_span: HashMap<Span, &'t Stmt>,
}

impl<'t> FlowSearch<'t> {
    /// Build the per-function CFGs and span indexes for `tu`.
    pub fn new(fp: &'t FlowPattern, tree_pats: &'t [Stmt], tu: &'t TranslationUnit) -> Self {
        let mut fns = Vec::new();
        visit::walk_functions(tu, &mut |f| {
            let cfg = build_cfg(f);
            if cfg.len() > MAX_CFG_NODES {
                fns.push(FnData {
                    f,
                    cfg: None,
                    by_span: HashMap::new(),
                });
                return;
            }
            let mut by_span = HashMap::new();
            for s in &f.body.stmts {
                visit::walk_stmt(s, &mut |st| {
                    by_span.insert(st.span(), st);
                });
            }
            fns.push(FnData {
                f,
                cfg: Some(cfg),
                by_span,
            });
        });
        FlowSearch { fp, tree_pats, fns }
    }

    /// All matches across the prepared functions for one seed
    /// environment.
    pub fn find(&self, ctx: &MatchCtx, seed: &Env) -> Vec<MatchState> {
        let mut out = Vec::new();
        for data in &self.fns {
            match &data.cfg {
                Some(cfg) => {
                    let m = FnMatcher {
                        ctx,
                        fp: self.fp,
                        cfg,
                        by_span: &data.by_span,
                    };
                    m.run(seed, &mut out);
                }
                None => tree_fallback(ctx, self.tree_pats, data.f, seed, &mut out),
            }
        }
        out
    }
}

/// Tree-sequence matching of one function's blocks — the behaviour a
/// flow-routed rule degrades to when the CFG is out of budget.
fn tree_fallback(
    ctx: &MatchCtx,
    pats: &[Stmt],
    f: &FunctionDef,
    seed: &Env,
    out: &mut Vec<MatchState>,
) {
    let mut blocks: Vec<&Block> = vec![&f.body];
    for s in &f.body.stmts {
        visit::walk_stmt(s, &mut |st| {
            if let Stmt::Block(inner) = st {
                blocks.push(inner);
            }
        });
    }
    for block in blocks {
        collect_seq_matches(ctx, pats, &block.stmts, block.span, seed, out);
    }
}

/// Per-function matcher state: the CFG plus a span-indexed view of the
/// function's statements (CFG nodes carry spans, not AST pointers).
struct FnMatcher<'a> {
    ctx: &'a MatchCtx<'a>,
    fp: &'a FlowPattern,
    cfg: &'a Cfg,
    by_span: &'a HashMap<Span, &'a Stmt>,
}

impl<'a> FnMatcher<'a> {
    /// The source statement a CFG node stands for, when it stands for
    /// exactly one (entry/exit/join nodes stand for none, branch nodes
    /// for a compound construct anchors never pin).
    fn stmt_at(&self, n: NodeId) -> Option<&'a Stmt> {
        match self.cfg.kind(n) {
            NodeKind::Stmt | NodeKind::Directive => self.by_span.get(&self.cfg.span(n)).copied(),
            _ => None,
        }
    }

    /// The expressions a node evaluates, for `when !=` scans: a simple
    /// statement contributes its whole expression tree, a branch node
    /// only its condition/scrutinee (the arms are separate nodes).
    fn violates_when(&self, n: NodeId, when_not: &[Expr], st: &MatchState) -> bool {
        let check_expr = |e: &Expr| -> bool {
            let mut hit = false;
            visit::walk_expr(e, &mut |sub| {
                if !hit {
                    for forbidden in when_not {
                        let mut probe = st.clone();
                        if matcher::match_expr(self.ctx, forbidden, sub, &mut probe) {
                            hit = true;
                            break;
                        }
                    }
                }
            });
            hit
        };
        match self.cfg.kind(n) {
            NodeKind::Stmt | NodeKind::Directive => match self.stmt_at(n) {
                Some(s) => {
                    let mut hit = false;
                    visit::deep_stmt_exprs(s, &mut |sub| {
                        if !hit {
                            for forbidden in when_not {
                                let mut probe = st.clone();
                                if matcher::match_expr(self.ctx, forbidden, sub, &mut probe) {
                                    hit = true;
                                    break;
                                }
                            }
                        }
                    });
                    hit
                }
                None => false,
            },
            NodeKind::Branch => match self.by_span.get(&self.cfg.span(n)).copied() {
                Some(Stmt::If { cond, .. })
                | Some(Stmt::While { cond, .. })
                | Some(Stmt::DoWhile { cond, .. }) => check_expr(cond),
                Some(Stmt::For { cond, .. }) => cond.as_ref().map(&check_expr).unwrap_or(false),
                Some(Stmt::Switch { scrutinee, .. }) => check_expr(scrutinee),
                _ => false,
            },
            _ => false,
        }
    }

    /// Seed an attempt at every node matching the first anchor.
    fn run(&self, seed: &Env, out: &mut Vec<MatchState>) {
        let FlowStep::Anchor(first) = &self.fp.steps[0] else {
            return;
        };
        for n in self.cfg.nodes() {
            let Some(s) = self.stmt_at(n) else { continue };
            let mut st = MatchState {
                env: seed.clone(),
                ..Default::default()
            };
            if !matcher::match_stmt(self.ctx, first, s, &mut st) {
                continue;
            }
            if let Some(done) = self.advance(1, n, st) {
                out.push(done);
            }
        }
    }

    /// Discharge steps `i..` starting from the anchor matched at `from`.
    /// Returns the completed match state, or `None` when some path
    /// escapes, violates a `when !=`, or binds inconsistently.
    fn advance(&self, i: usize, from: NodeId, st: MatchState) -> Option<MatchState> {
        if i >= self.fp.steps.len() {
            return Some(st);
        }
        let FlowStep::Gap { when_not, span } = &self.fp.steps[i] else {
            unreachable!("lowered steps alternate anchor/gap");
        };
        let FlowStep::Anchor(next) = &self.fp.steps[i + 1] else {
            unreachable!("lowered steps end on an anchor");
        };
        let starts: Vec<NodeId> = self.cfg.succs(from).iter().map(|&(s, _)| s).collect();
        let hits = walk_gap(
            self.cfg,
            &starts,
            Quant::Forall,
            &mut |m| {
                self.stmt_at(m)
                    .map(|s| {
                        let mut probe = st.clone();
                        matcher::match_stmt(self.ctx, next, s, &mut probe)
                    })
                    .unwrap_or(false)
            },
            &mut |m| when_not.is_empty() || !self.violates_when(m, when_not, &st),
        )
        .ok()?;
        // Deterministic source order for binding and rewriting.
        let mut hits = hits;
        hits.sort_by_key(|&m| self.cfg.span(m).start);

        let mut cur = st;
        // Record the dots pair: the contiguous source region between the
        // anchor and the earliest hit (paths may diverge across it; the
        // pair only feeds dots re-rendering and insertion anchoring).
        let from_end = self.stmt_at(from).map(|s| s.span().end).unwrap_or(0);
        let first_hit = hits
            .iter()
            .map(|&m| self.cfg.span(m).start)
            .min()
            .unwrap_or(from_end);
        let dots_src = if first_hit >= from_end {
            Span::new(from_end, first_hit)
        } else {
            Span::empty(from_end)
        };
        cur.pairs.push(Pair {
            pat: *span,
            src: dots_src,
            kind: PairKind::Dots,
        });
        // Bind every hit into the one match state (join-point
        // reconciliation), then require the remaining steps to hold
        // from each hit.
        for m in hits {
            let s = self.stmt_at(m)?;
            let mut attempt = cur.clone();
            if !matcher::match_stmt(self.ctx, next, s, &mut attempt) {
                return None; // inconsistent bindings across paths
            }
            cur = self.advance(i + 2, m, attempt)?;
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocci_cast::parser::{
        parse_statements, parse_translation_unit, MetaKind, MetaLookup, NoMeta, ParseOptions,
    };
    use cocci_smpl::{MetaDecl, MetaDeclKind};
    use std::collections::HashMap as Map;

    struct DeclsLookup<'a>(&'a [MetaDecl]);
    impl MetaLookup for DeclsLookup<'_> {
        fn kind(&self, name: &str) -> Option<MetaKind> {
            self.0
                .iter()
                .find(|d| d.name == name)
                .map(|d| d.kind.parse_kind())
        }
    }

    fn decls(list: &[(&str, MetaDeclKind)]) -> Vec<MetaDecl> {
        list.iter()
            .map(|(n, k)| MetaDecl {
                name: n.to_string(),
                kind: k.clone(),
                constraint: None,
                inherited_from: None,
            })
            .collect()
    }

    fn lowered(pat: &str, ds: &[MetaDecl]) -> Option<FlowPattern> {
        let pats = parse_statements(pat, ParseOptions::pattern(), &DeclsLookup(ds)).unwrap();
        lower_pattern(&pats)
    }

    fn flow_match(pat: &str, src: &str, ds: Vec<MetaDecl>) -> Vec<MatchState> {
        let pats = parse_statements(pat, ParseOptions::pattern(), &DeclsLookup(&ds)).unwrap();
        let fp = lower_pattern(&pats).expect("pattern lowers");
        let tu = parse_translation_unit(src, ParseOptions::c(), &NoMeta).unwrap();
        let regexes = Map::new();
        let ctx = MatchCtx {
            src,
            decls: &ds,
            regexes: &regexes,
        };
        find_flow_matches(&ctx, &fp, &pats, &tu, &Env::new())
    }

    #[test]
    fn lowering_accepts_simple_alternation() {
        let fp = lowered("a(); ... b();", &[]).unwrap();
        assert_eq!(fp.steps.len(), 3);
        assert!(matches!(fp.steps[1], FlowStep::Gap { .. }));
        let fp = lowered("a(); ... b(); ... return;", &[]).unwrap();
        assert_eq!(fp.steps.len(), 5);
    }

    #[test]
    fn lowering_refuses_non_routable_shapes() {
        // No interior dots.
        assert!(lowered("a(); b();", &[]).is_none());
        // Consecutive anchors around the dots.
        assert!(lowered("a(); b(); ... c();", &[]).is_none());
        // Compound anchor.
        assert!(lowered("a(); ... while (x) { b(); }", &[]).is_none());
        // Declarations keep the tree route (they can match top level).
        assert!(lowered("int x = 0; ... b();", &[]).is_none());
        // Statement metavariables keep the tree route too.
        let ds = decls(&[("A", MetaDeclKind::Statement)]);
        assert!(lowered("A ... b();", &ds).is_none());
        // Guarded leading dots would lose their constraint.
        assert!(lowered("... when != g() a(); ... b();", &[]).is_none());
    }

    #[test]
    fn lowering_trims_window_padding_dots() {
        let fp = lowered("... a(); ... b(); ...", &[]).unwrap();
        assert_eq!(fp.steps.len(), 3);
    }

    #[test]
    fn all_paths_refuses_early_return() {
        let ms = flow_match(
            "a(); ... b();",
            "void f(int x) { a(); if (x) return; b(); }",
            vec![],
        );
        assert!(ms.is_empty(), "escaping path must kill the match");
    }

    #[test]
    fn cross_branch_hits_reconcile() {
        let ds = decls(&[("e", MetaDeclKind::Expression)]);
        let ms = flow_match(
            "a(); ... b(e);",
            "void f(int x) { a(); if (x) { b(1); } else { b(1); } done(); }",
            ds,
        );
        assert_eq!(ms.len(), 1);
        // Both hits recorded as pairs of the same pattern statement.
        let stmt_pairs = ms[0]
            .pairs
            .iter()
            .filter(|p| p.kind == PairKind::Stmt)
            .count();
        assert!(stmt_pairs >= 3, "anchor + two hits, got {stmt_pairs}");
    }

    #[test]
    fn inconsistent_bindings_across_paths_refuse() {
        let ds = decls(&[("e", MetaDeclKind::Expression)]);
        let ms = flow_match(
            "a(); ... b(e);",
            "void f(int x) { a(); if (x) { b(1); } else { b(2); } done(); }",
            ds,
        );
        assert!(ms.is_empty(), "e cannot bind both 1 and 2");
    }

    #[test]
    fn when_not_checks_skipped_nodes_and_branch_conditions() {
        // Violation inside a skipped simple statement.
        let ms = flow_match(
            "a(); ... when != g() b();",
            "void f(void) { a(); g(); b(); }",
            vec![],
        );
        assert!(ms.is_empty());
        // Violation inside a skipped branch condition.
        let ms = flow_match(
            "a(); ... when != g() b();",
            "void f(int x) { a(); if (g()) { x = 1; } b(); }",
            vec![],
        );
        assert!(ms.is_empty());
        // Clean gap matches.
        let ms = flow_match(
            "a(); ... when != g() b();",
            "void f(void) { a(); mid(); b(); }",
            vec![],
        );
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn loop_body_hit_fails_zero_iteration_path() {
        let ms = flow_match(
            "a(); ... b();",
            "void f(int n) { a(); while (n) { b(); } }",
            vec![],
        );
        assert!(ms.is_empty(), "zero-iteration path escapes without b()");
        let ms = flow_match(
            "a(); ... b();",
            "void f(int n) { a(); while (n) { step(); } b(); }",
            vec![],
        );
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn three_anchor_chain() {
        let ms = flow_match(
            "a(); ... b(); ... c();",
            "void f(int x) { a(); if (x) { b(); } else { b(); } c(); }",
            vec![],
        );
        assert_eq!(ms.len(), 1);
        let ms = flow_match(
            "a(); ... b(); ... c();",
            "void f(int x) { a(); if (x) { b(); c(); } else { b(); } done(); }",
            vec![],
        );
        assert!(ms.is_empty(), "else-branch b() never reaches c()");
    }
}
