//! `cocci-core`: the semantic-patch engine — matching, transformation,
//! rule orchestration, and a parallel multi-file driver.
//!
//! This is the paper's primary contribution rebuilt in Rust. The pipeline
//! for one file is:
//!
//! 1. parse the target file with `cocci-cast`;
//! 2. for each rule of the semantic patch (in order), honouring
//!    `depends on` and inherited-metavariable seeding, find all matches of
//!    the rule's pattern — flow-sensitive rules (statement dots) go
//!    through CFG path matching ([`flowmatch`], all-paths semantics over
//!    `cocci-flow` graphs), everything else through the tree matcher
//!    ([`matcher`]);
//! 3. for each match, generate span edits from the rule body's `-`/`+`
//!    annotations ([`rewrite`]);
//! 4. splice all edits into the original text ([`edits`]), yielding a
//!    minimal diff.
//!
//! The patch is compiled **once** per run ([`compile::CompiledPatch`]:
//! regex constraints, inheritance graph, per-rule prefilter atoms) and
//! shared immutably across workers; the [`driver`] module distributes
//! steps 1–4 over many files with scoped threads, and the [`corpus`]
//! module streams whole directory trees through the driver in
//! bounded-memory batches, emitting a machine-readable [`ApplyReport`].
//!
//! ```
//! use cocci_core::Patcher;
//! let patch = cocci_smpl::parse_semantic_patch(
//!     "@@ @@\n- old_api(42);\n+ new_api(42);\n",
//! ).unwrap();
//! let mut patcher = Patcher::new(&patch).unwrap();
//! let out = patcher.apply("demo.c", "void f(void) { old_api(42); }\n").unwrap();
//! assert_eq!(out.unwrap(), "void f(void) { new_api(42); }\n");
//! ```

pub mod compile;
pub mod context;
pub mod corpus;
pub mod driver;
pub mod edits;
pub mod env;
pub mod explain;
pub mod findings;
pub mod flowmatch;
pub mod matcher;
pub mod orchestrate;
pub mod pool;
pub mod report;
pub mod rewrite;
pub mod ruleset;
pub mod scan;
pub mod suppress;

pub use compile::CompiledPatch;
pub use context::FileContext;
pub use corpus::{
    apply_to_corpus, apply_to_corpus_resumed, BatchOptions, CorpusOptions, FileSource, IgnoreSet,
    MemorySource, WalkSource,
};
pub use driver::{apply_batch, apply_batch_opts, apply_to_files, ExecOptions, FileOutcome};
pub use edits::{Edit, EditConflict, EditSet};
pub use env::{Env, ExportedEnv, Value};
pub use explain::{AttemptTrace, ExplainBlock, ExplainConfig, KillStage};
pub use findings::{to_sarif, to_sarif_with, Finding, SarifRule};
pub use flowmatch::{CfgCache, FlowPattern, FlowSearch, FlowStep, SearchProbe};
pub use matcher::{MatchCtx, MatchState, Pair, PairKind};
pub use orchestrate::{ApplyError, Patcher};
pub use pool::{resolve_threads, PoolStats, ResultSlots, WorkQueue};
pub use report::{content_hash, ApplyReport, FileReport, FileStatus, PoolMetrics, RunMetrics};
pub use ruleset::{parse_rule_metadata, CompiledRuleSet, RuleMeta, ScanRule, Severity};
pub use scan::{scan_batch, scan_corpus, RuleOutcome, ScanOutcome};
pub use suppress::SuppressionIndex;
