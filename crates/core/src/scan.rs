//! The N-rule scan driver: lint a corpus with a whole rule collection
//! in one pass.
//!
//! The single-patch driver parallelises over *files*; scanning
//! parallelises over **(file × surviving-rule) units**. Each file gets
//! one [`FileContext`] (text, parse tree, CFG cache, line table,
//! suppression index — built once), one pass of the rule set's merged
//! prefilter automaton decides which rules may match it at all, and the
//! surviving units are distributed over the worker pool. Units of the
//! same file serialise on the file's context mutex, so fifty rules
//! over one file share one parse — the [`ScanOutcome::parses`] probe
//! asserts exactly that.
//!
//! Findings are attributed to the scan rule that produced them: each
//! finding's `rule` field is rewritten to the rule's id and its message
//! honours the rule's `// spatch-message:` override, so one merged
//! report (or SARIF run) stays navigable at fifty rules.
//!
//! Scan mode never writes files: a transform rule that *would* change a
//! file records a `changed` per-rule outcome and its match count, and
//! nothing else.

use crate::context::FileContext;
use crate::corpus::{CorpusOptions, FileSource};
use crate::driver::{catch_matcher_panics, ExecOptions};
use crate::explain::{self, AttemptTrace, ExplainBlock, KillStage, RuleAttempt};
use crate::findings::Finding;
use crate::orchestrate::{ApplyError, Patcher};
use crate::pool::{resolve_threads, ResultSlots, WorkQueue};
use crate::report::json::{self, Value};
use crate::report::{ApplyReport, FileReport, FileStatus};
use crate::ruleset::{CompiledRuleSet, ScanRule};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Outcome of one rule on one file (scan mode).
#[derive(Debug, Clone, PartialEq)]
pub struct RuleOutcome {
    /// The rule id ([`RuleMeta::id`](crate::RuleMeta::id)).
    pub id: String,
    /// Per-rule status; `changed` means the (transform) rule *would*
    /// rewrite the file — scan mode never writes.
    pub status: FileStatus,
    /// Matches this rule found in the file.
    pub matches: usize,
    /// Findings kept after suppression filtering.
    pub findings: usize,
    /// Findings dropped by `// spatch-ignore` markers.
    pub suppressed: usize,
    /// Wall-clock seconds this rule spent on this file — recorded for
    /// *every* status, including `timeout` and `error`, so slow-rule
    /// accounting (`--stats`) covers quarantined work too.
    pub seconds: f64,
    /// Deepest funnel stage this rule's attempts reached on this file
    /// (`None` when no attempt was recorded — e.g. a matcher panic, or
    /// a report from an older build).
    pub kill_stage: Option<KillStage>,
}

impl RuleOutcome {
    /// Serialize as one JSON object (used inside file reports).
    pub(crate) fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"id\": {}, \"status\": \"{}\", \"matches\": {}, \"findings\": {}, \"suppressed\": {}, \"seconds\": {:e}",
            json::escape(&self.id),
            self.status,
            self.matches,
            self.findings,
            self.suppressed,
            self.seconds
        );
        if let Some(k) = self.kill_stage {
            out.push_str(&format!(", \"kill_stage\": \"{}\"", k.name()));
        }
        out.push('}');
        out
    }

    /// Parse the [`to_json`](RuleOutcome::to_json) form back.
    pub(crate) fn from_json(v: &Value) -> Result<RuleOutcome, String> {
        let o = v.as_object().ok_or("rule outcome: expected an object")?;
        let get_n = |k: &str| o.get(k).and_then(Value::as_f64).unwrap_or(0.0) as usize;
        Ok(RuleOutcome {
            id: o
                .get("id")
                .and_then(Value::as_str)
                .ok_or("rule outcome: missing \"id\"")?
                .to_string(),
            status: o
                .get("status")
                .and_then(Value::as_str)
                .and_then(FileStatus::parse)
                .ok_or("rule outcome: bad \"status\"")?,
            matches: get_n("matches"),
            findings: get_n("findings"),
            suppressed: get_n("suppressed"),
            seconds: o.get("seconds").and_then(Value::as_f64).unwrap_or(0.0),
            kill_stage: o
                .get("kill_stage")
                .and_then(Value::as_str)
                .and_then(KillStage::parse),
        })
    }
}

/// Result of scanning one file with a whole rule set.
#[derive(Debug, Clone)]
pub struct ScanOutcome {
    /// File name as passed in.
    pub name: String,
    /// FNV-1a hash of the file text (resume bookkeeping).
    pub hash: u64,
    /// Accumulated wall-clock seconds (prefilter scan + every rule).
    pub seconds: f64,
    /// Times the file text was parsed — the "N rules, one parse"
    /// guarantee says this stays ≤ 1 however many rules survived.
    pub parses: usize,
    /// Per-function CFGs built (shared across flow-sensitive rules).
    pub cfg_builds: usize,
    /// Rules the merged prefilter pruned for this file without parsing.
    pub rules_pruned: usize,
    /// Outcomes of the surviving rules, ascending by rule id.
    pub rules: Vec<RuleOutcome>,
    /// All kept findings, attributed to their rule ids, grouped in rule
    /// order.
    pub findings: Vec<Finding>,
    /// Total findings dropped by `// spatch-ignore` markers.
    pub suppressed: usize,
    /// Per-path witnesses summed over flow-routed rules.
    pub witnesses: usize,
    /// First per-rule failure, prefixed with the rule id.
    pub error: Option<String>,
    /// Every attempt this file saw — one `Prefilter` entry per pruned
    /// rule plus the surviving units' attempts, attributed to scan rule
    /// ids. Feeds the report's `explain` block under `--explain`.
    pub attempts: Vec<RuleAttempt>,
}

impl ScanOutcome {
    /// Aggregate file status: the most severe per-rule status
    /// (error > timeout > changed > matched > unmatched), or `pruned`
    /// when no rule survived the prefilter.
    pub fn status(&self) -> FileStatus {
        fn rank(s: FileStatus) -> u8 {
            match s {
                FileStatus::Pruned => 0,
                FileStatus::Unmatched => 1,
                FileStatus::Matched => 2,
                FileStatus::Changed => 3,
                FileStatus::Timeout => 4,
                FileStatus::Error => 5,
            }
        }
        self.rules
            .iter()
            .map(|r| r.status)
            .max_by_key(|s| rank(*s))
            .unwrap_or(FileStatus::Pruned)
    }

    /// Matches summed over all rules.
    pub fn matches(&self) -> usize {
        self.rules.iter().map(|r| r.matches).sum()
    }

    /// The per-file report entry (per-rule outcomes included).
    pub fn to_report(&self) -> FileReport {
        FileReport {
            name: self.name.clone(),
            status: self.status(),
            matches: self.matches(),
            witnesses: self.witnesses,
            seconds: self.seconds,
            hash: self.hash,
            error: self.error.clone(),
            findings: self.findings.clone(),
            rules: self.rules.clone(),
            rules_pruned: self.rules_pruned,
            suppressed: self.suppressed,
            kill_stage: self.attempts.iter().map(|a| a.stage).max(),
        }
    }
}

/// What one (file × rule) work unit produced.
struct UnitResult {
    outcome: RuleOutcome,
    findings: Vec<Finding>,
    witnesses: usize,
    error: Option<String>,
    /// Funnel attempts, relabelled to the scan rule id.
    attempts: Vec<RuleAttempt>,
}

/// Shared per-file state during a scan run.
struct Slot {
    name: String,
    text: String,
    ctx: Mutex<FileContext>,
    /// Rule indices that survived the merged prefilter, ascending (and
    /// therefore in rule-id order — the set is sorted by id).
    surviving: Vec<usize>,
    /// One `Prefilter` attempt per pruned rule, recorded at build time.
    pruned_attempts: Vec<RuleAttempt>,
    sieve_seconds: f64,
    /// One preassigned result cell per surviving rule, so parallel
    /// completion order cannot reorder the output.
    results: Mutex<Vec<Option<UnitResult>>>,
    /// Units still outstanding; the worker that takes this to zero
    /// assembles the file's outcome (streaming runs only care).
    remaining: AtomicUsize,
}

/// One (file × surviving-rule) work unit on the queue.
struct Unit {
    slot: Arc<Slot>,
    /// Index into `slot.surviving` / `slot.results`.
    k: usize,
    /// The file's [`ResultSlots`] cell (streaming runs; `scan_batch`
    /// assembles after the join and ignores it).
    seq: usize,
}

/// A completed entry in a streaming scan's output sequence.
enum ScanDone {
    /// Every unit of the file finished; assemble from the slot.
    Ran(Arc<Slot>),
    /// Resumed or unreadable — the report entry is already final.
    Skipped(FileReport),
}

impl Slot {
    /// Sieve `text` against the merged prefilter and set up the per-rule
    /// result cells. Pruned rules record their `Prefilter` funnel
    /// attempt here — the only point that knows a (file × rule) pair
    /// was killed before parsing.
    fn build(set: &CompiledRuleSet, name: String, text: String, opts: &ExecOptions) -> Slot {
        let t0 = Instant::now();
        let surviving: Vec<usize> = if opts.prefilter {
            let _span = cocci_trace::span(cocci_trace::Phase::Prefilter);
            set.surviving_rules(&text)
        } else {
            (0..set.len()).collect()
        };
        if opts.prefilter && surviving.is_empty() {
            cocci_trace::count(cocci_trace::Counter::FilesPruned, 1);
        }
        let mut pruned_attempts = Vec::new();
        if surviving.len() < set.len() {
            let mut next = surviving.iter().copied().peekable();
            for (ri, rule) in set.rules.iter().enumerate() {
                if next.peek() == Some(&ri) {
                    next.next();
                    continue;
                }
                let id = &rule.meta.id;
                let detail = opts
                    .explain
                    .as_ref()
                    .filter(|cfg| cfg.matches(&name, id))
                    .map(|_| "merged prefilter: no required atom of this rule occurs".to_string());
                explain::record_attempt(KillStage::Prefilter, &name, id, detail.as_deref());
                pruned_attempts.push(RuleAttempt {
                    rule: id.clone(),
                    stage: KillStage::Prefilter,
                    detail,
                });
            }
        }
        let n = surviving.len();
        Slot {
            ctx: Mutex::new(FileContext::new(name.clone(), text.as_str())),
            name,
            text,
            surviving,
            pruned_attempts,
            sieve_seconds: t0.elapsed().as_secs_f64(),
            results: Mutex::new((0..n).map(|_| None).collect()),
            remaining: AtomicUsize::new(n),
        }
    }

    /// Fold the filled result cells into the file outcome. Callers
    /// guarantee every unit has completed (`remaining` hit zero, or the
    /// worker scope was joined).
    fn assemble(&self, set: &CompiledRuleSet) -> ScanOutcome {
        let ctx = self.ctx.lock().unwrap();
        let results = std::mem::take(&mut *self.results.lock().unwrap());
        let mut rules = Vec::with_capacity(self.surviving.len());
        let mut findings = Vec::new();
        let mut suppressed = 0usize;
        let mut witnesses = 0usize;
        let mut seconds = self.sieve_seconds;
        let mut error: Option<String> = None;
        let mut attempts = self.pruned_attempts.clone();
        for r in results {
            let r = r.expect("every unit processed");
            seconds += r.outcome.seconds;
            witnesses += r.witnesses;
            suppressed += r.outcome.suppressed;
            findings.extend(r.findings);
            attempts.extend(r.attempts);
            if error.is_none() {
                if let Some(e) = r.error {
                    error = Some(format!("rule {}: {e}", r.outcome.id));
                }
            }
            rules.push(r.outcome);
        }
        ScanOutcome {
            name: self.name.clone(),
            hash: ctx.hash(),
            seconds,
            parses: ctx.parses(),
            cfg_builds: ctx.cfg_builds(),
            rules_pruned: set.len() - self.surviving.len(),
            rules,
            findings,
            suppressed,
            witnesses,
            error,
            attempts,
        }
    }
}

/// Run one (file × rule) unit, serialising on the file's context.
fn run_unit(rule: &ScanRule, slot: &Slot, opts: &ExecOptions) -> UnitResult {
    // One cheap Patcher per unit over the shared compile — script
    // globals and stats are per-application state.
    let mut patcher = Patcher::from_compiled(Arc::clone(&rule.compiled));
    patcher.flow_enabled = opts.flow;
    patcher.time_budget = opts.timeout_ms.map(Duration::from_millis);
    patcher.explain = opts.explain.clone();
    let t0 = Instant::now();
    let mut ctx = slot.ctx.lock().unwrap();
    let res = catch_matcher_panics(&slot.name, || patcher.apply_ctx(&mut ctx));
    // Funnel attempts ride in the patcher's stats for both outcomes
    // (`apply_ctx` stores them at its timeout/parse `Err` sites too);
    // relabel them from inner SMPL rule names to the scan rule id —
    // the same attribution findings get.
    let mut attempts = std::mem::take(&mut patcher.last_stats.attempts);
    for a in &mut attempts {
        a.rule = rule.meta.id.clone();
    }
    match res {
        Ok(output) => {
            let matches: usize = patcher.last_stats.matches_per_rule.iter().sum();
            let mut findings = std::mem::take(&mut patcher.last_stats.findings);
            // Attribute findings to the scan rule: its id (not the inner
            // SMPL rule name) keys the merged report, and its message
            // override wins.
            for f in &mut findings {
                f.rule = rule.meta.id.clone();
                if let Some(m) = &rule.meta.message {
                    f.message = m.clone();
                }
            }
            let (findings, suppressed) = if findings.is_empty() {
                (findings, 0)
            } else {
                ctx.suppressions().filter(findings)
            };
            cocci_trace::count(cocci_trace::Counter::Suppressions, suppressed as u64);
            // Inline markers silenced the whole unit: what completed the
            // funnel actually died at suppression.
            if suppressed > 0 && findings.is_empty() {
                for a in &mut attempts {
                    if a.stage == KillStage::Completed {
                        a.stage = KillStage::Suppressed;
                        if a.detail.is_some() || patcher.explain_wants(&slot.name, &a.rule) {
                            a.detail =
                                Some(format!("all {suppressed} finding(s) suppressed inline"));
                        }
                    }
                }
            }
            for a in &attempts {
                explain::record_attempt(a.stage, &slot.name, &a.rule, a.detail.as_deref());
            }
            let status = if output.is_some() {
                FileStatus::Changed
            } else if matches > 0 {
                FileStatus::Matched
            } else {
                FileStatus::Unmatched
            };
            UnitResult {
                outcome: RuleOutcome {
                    id: rule.meta.id.clone(),
                    status,
                    matches,
                    findings: findings.len(),
                    suppressed,
                    seconds: t0.elapsed().as_secs_f64(),
                    kill_stage: attempts.iter().map(|a| a.stage).max(),
                },
                findings,
                witnesses: patcher.last_stats.witnesses,
                error: None,
                attempts,
            }
        }
        // Failed attempts keep their elapsed time too: a timed-out or
        // crashing rule is exactly what slow-file accounting must see.
        Err(e) => {
            for a in &attempts {
                explain::record_attempt(a.stage, &slot.name, &a.rule, a.detail.as_deref());
            }
            UnitResult {
                outcome: RuleOutcome {
                    id: rule.meta.id.clone(),
                    status: if e.timed_out {
                        FileStatus::Timeout
                    } else {
                        FileStatus::Error
                    },
                    matches: 0,
                    findings: 0,
                    suppressed: 0,
                    seconds: t0.elapsed().as_secs_f64(),
                    kill_stage: attempts.iter().map(|a| a.stage).max(),
                },
                findings: Vec::new(),
                witnesses: 0,
                error: Some(e.message),
                attempts,
            }
        }
    }
}

/// Scan one in-memory batch of files with every rule of `set`.
///
/// Work units are (file, surviving rule) pairs pulled from one atomic
/// counter; units of the same file serialise on its [`FileContext`]
/// mutex so the parse/CFG/line-table work happens once per file. The
/// merged prefilter (one automaton pass per file) decides survival; with
/// `opts.prefilter` off every rule runs on every file.
pub fn scan_batch(
    set: &CompiledRuleSet,
    files: &[(String, String)],
    opts: &ExecOptions,
) -> Vec<ScanOutcome> {
    let slots: Vec<Arc<Slot>> = files
        .iter()
        .map(|(name, text)| Arc::new(Slot::build(set, name.clone(), text.clone(), opts)))
        .collect();
    let total_units: usize = slots.iter().map(|s| s.surviving.len()).sum();
    let threads = resolve_threads(opts.threads).min(total_units.max(1));
    let queue: WorkQueue<Unit> = WorkQueue::new(threads);
    for (seq, slot) in slots.iter().enumerate() {
        queue.push_chunk((0..slot.surviving.len()).map(|k| Unit {
            slot: Arc::clone(slot),
            k,
            seq,
        }));
    }
    queue.close();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let queue = &queue;
            scope.spawn(move || {
                while let Some(u) = queue.pop(w) {
                    let rule = &set.rules[u.slot.surviving[u.k]];
                    let result = run_unit(rule, &u.slot, opts);
                    u.slot.results.lock().unwrap()[u.k] = Some(result);
                    u.slot.remaining.fetch_sub(1, Ordering::SeqCst);
                }
            });
        }
    });
    // Assemble per-file outcomes in input order; per-rule entries are
    // already in rule-id order via the preassigned cells.
    slots.iter().map(|slot| slot.assemble(set)).collect()
}

/// Scan every file of `source` with `set`, streaming batches with
/// bounded memory; the scan counterpart of
/// [`apply_to_corpus_resumed`](crate::apply_to_corpus_resumed).
///
/// `previous` enables incremental re-scan: files whose content hash and
/// completed status match the prior report are skipped, carrying their
/// findings *and per-rule outcomes* forward. Sound only against the same
/// rule set — callers must compare [`ApplyReport::patch_hash`] against
/// [`CompiledRuleSet::hash`] before resuming (the returned report
/// records it).
pub fn scan_corpus(
    set: &CompiledRuleSet,
    source: &mut dyn FileSource,
    opts: &CorpusOptions,
    previous: Option<&ApplyReport>,
    mut sink: impl FnMut(&str, &str, &ScanOutcome),
) -> Result<ApplyReport, ApplyError> {
    if opts.no_flow {
        if let Some(rule) = set.requires_flow() {
            return Err(ApplyError::new(format!(
                "rule {}: `when exists` / `when strict` require CFG path matching, \
                 which --no-flow disables",
                rule.meta.id
            )));
        }
    }
    let exec = ExecOptions {
        threads: opts.threads,
        prefilter: !opts.no_prefilter,
        flow: !opts.no_flow,
        timeout_ms: opts.timeout_ms,
        explain: opts.explain.clone(),
    };
    let prev_by_name: HashMap<&str, &FileReport> = previous
        .map(|r| {
            r.files
                .iter()
                .filter(|f| f.hash != 0)
                .map(|f| (f.name.as_str(), f))
                .collect()
        })
        .unwrap_or_default();
    let t0 = Instant::now();
    let mut files = Vec::new();
    let mut resumed = 0usize;
    let mut explain_block = opts.explain.as_ref().map(|_| ExplainBlock::default());
    let threads = resolve_threads(opts.threads);
    let queue: WorkQueue<Unit> = WorkQueue::new(threads);
    let out: ResultSlots<ScanDone> = ResultSlots::new();
    // One persistent worker team for the whole corpus: the producer (this
    // thread) streams (file × rule) units while workers drain and steal.
    // The worker that completes a file's last unit publishes it; the
    // producer drains the filled prefix between batches, so sinks and
    // reports observe walker order whatever the completion order was.
    std::thread::scope(|scope| {
        for w in 0..threads {
            let (queue, out, exec) = (&queue, &out, &exec);
            let spawn = std::thread::Builder::new().name(format!("worker-{w}"));
            let handle = spawn.spawn_scoped(scope, move || {
                while let Some(u) = queue.pop(w) {
                    let rule = &set.rules[u.slot.surviving[u.k]];
                    let result = run_unit(rule, &u.slot, exec);
                    u.slot.results.lock().unwrap()[u.k] = Some(result);
                    if u.slot.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                        out.set(u.seq, ScanDone::Ran(Arc::clone(&u.slot)));
                    }
                }
            });
            handle.expect("spawn scan worker");
        }

        let explain_cfg = opts.explain.as_deref();
        let explain_block = &mut explain_block;
        let mut emit = |done: Vec<ScanDone>| {
            for d in done {
                let _report_span = cocci_trace::span(cocci_trace::Phase::Report);
                match d {
                    ScanDone::Ran(slot) => {
                        let outcome = slot.assemble(set);
                        if let (Some(block), Some(cfg)) = (explain_block.as_mut(), explain_cfg) {
                            block.extend(
                                outcome
                                    .attempts
                                    .iter()
                                    .filter(|a| cfg.matches(&outcome.name, &a.rule))
                                    .map(|a| AttemptTrace {
                                        file: outcome.name.clone(),
                                        rule: a.rule.clone(),
                                        stage: a.stage,
                                        detail: a.detail.clone(),
                                    }),
                            );
                        }
                        sink(&slot.name, &slot.text, &outcome);
                        files.push(outcome.to_report());
                    }
                    ScanDone::Skipped(report) => files.push(report),
                }
            }
        };
        loop {
            let batch = {
                let _walk_span = cocci_trace::span(cocci_trace::Phase::Walk);
                source.next_batch(&opts.batch)
            };
            for (name, msg) in source.take_errors() {
                let seq = out.reserve(1);
                out.set(
                    seq,
                    ScanDone::Skipped(FileReport {
                        name,
                        status: FileStatus::Error,
                        matches: 0,
                        witnesses: 0,
                        seconds: 0.0,
                        hash: 0,
                        error: Some(msg),
                        findings: Vec::new(),
                        rules: Vec::new(),
                        rules_pruned: 0,
                        suppressed: 0,
                        kill_stage: None,
                    }),
                );
            }
            if batch.is_empty() {
                break;
            }
            for (name, text) in batch {
                let hash = crate::report::content_hash(&text);
                let seq = out.reserve(1);
                match prev_by_name.get(name.as_str()) {
                    Some(prev) if prev.hash == hash && prev.status.resumable() => {
                        resumed += 1;
                        out.set(
                            seq,
                            ScanDone::Skipped(FileReport {
                                name,
                                status: prev.status,
                                matches: prev.matches,
                                witnesses: prev.witnesses,
                                seconds: 0.0,
                                hash,
                                error: prev.error.clone(),
                                findings: prev.findings.clone(),
                                // Per-rule outcomes ride forward with the
                                // skip, like findings do — an unchanged
                                // file still has the same per-rule story.
                                rules: prev.rules.clone(),
                                rules_pruned: prev.rules_pruned,
                                suppressed: prev.suppressed,
                                // Copied forward, but no counters bump:
                                // a resumed file is not a new attempt.
                                kill_stage: prev.kill_stage,
                            }),
                        );
                    }
                    _ => {
                        let slot = Arc::new(Slot::build(set, name, text, &exec));
                        if slot.surviving.is_empty() {
                            // Pruned without a parse — no units to queue.
                            out.set(seq, ScanDone::Ran(slot));
                        } else {
                            let units = (0..slot.surviving.len()).map(|k| Unit {
                                slot: Arc::clone(&slot),
                                k,
                                seq,
                            });
                            queue.push_chunk(units);
                        }
                    }
                }
            }
            // Release finished files (and their text) between batches.
            emit(out.drain_ready());
        }
        queue.close();
        emit(out.drain_all());
    });
    // Workers joined — the trace snapshot now holds every span of this
    // run, and the queue's counters describe its scheduling.
    let metrics = cocci_trace::is_enabled().then(|| {
        crate::report::RunMetrics::from_trace(&cocci_trace::collect(), Some(&queue.stats()))
    });
    if let Some(block) = explain_block.as_mut() {
        block.finish();
    }
    Ok(ApplyReport {
        patch: String::new(),
        patch_hash: set.hash,
        threads: opts.threads,
        prefilter: !opts.no_prefilter,
        resumed,
        total_seconds: t0.elapsed().as_secs_f64(),
        metrics,
        lints: Vec::new(),
        explain: explain_block,
        files,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::MemorySource;

    fn src(id: &str, text: &str) -> (String, String, String) {
        (format!("{id}.cocci"), id.to_string(), text.to_string())
    }

    fn report_rule(callee: &str) -> String {
        format!("@scan@\nexpression e;\nposition p;\n@@\n{callee}(e)@p;\n")
    }

    fn set3() -> CompiledRuleSet {
        CompiledRuleSet::from_sources(&[
            src("r-alpha", &report_rule("alpha")),
            src("r-beta", &report_rule("beta")),
            src("r-gamma", &report_rule("gamma")),
        ])
        .unwrap()
    }

    fn key(f: &Finding) -> (String, u32, u32, String) {
        (f.path.clone(), f.line, f.col, f.rule.clone())
    }

    #[test]
    fn scan_agrees_with_individual_runs() {
        let set = set3();
        let files: Vec<(String, String)> = vec![
            (
                "ab.c".into(),
                "void f(void) {\n    alpha(1);\n    beta(2);\n}\n".into(),
            ),
            ("g.c".into(), "void g(void) {\n    gamma(3);\n}\n".into()),
            ("none.c".into(), "void h(void) {\n    delta(4);\n}\n".into()),
        ];
        let outcomes = scan_batch(&set, &files, &ExecOptions::default());

        // Baseline: each rule applied individually to each file.
        let mut individual: Vec<(String, u32, u32, String)> = Vec::new();
        for rule in &set.rules {
            let mut p = Patcher::from_compiled(Arc::clone(&rule.compiled));
            for (name, text) in &files {
                p.apply(name, text).unwrap();
                for f in std::mem::take(&mut p.last_stats.findings) {
                    individual.push((f.path, f.line, f.col, rule.meta.id.clone()));
                }
            }
        }
        let mut merged: Vec<_> = outcomes
            .iter()
            .flat_map(|o| o.findings.iter().map(key))
            .collect();
        merged.sort();
        individual.sort();
        assert_eq!(merged, individual, "scan == N individual runs");
        // Finding attribution: the scan-rule id, not the SMPL rule name.
        assert!(merged.iter().all(|k| k.3.starts_with("r-")));
    }

    #[test]
    fn one_parse_serves_every_rule() {
        let rules: Vec<_> = (0..10)
            .map(|i| src(&format!("r{i:02}"), &report_rule("shared_api")))
            .collect();
        let set = CompiledRuleSet::from_sources(&rules).unwrap();
        let files = vec![(
            "f.c".to_string(),
            "void f(void) {\n    shared_api(1);\n}\n".to_string(),
        )];
        let outcomes = scan_batch(&set, &files, &ExecOptions::default());
        assert_eq!(outcomes[0].rules.len(), 10, "all rules survive");
        assert_eq!(outcomes[0].parses, 1, "ten rules, one parse");
        assert_eq!(outcomes[0].findings.len(), 10);
        // The same holds with parallel workers racing on the file.
        let outcomes = scan_batch(
            &set,
            &files,
            &ExecOptions {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(outcomes[0].parses, 1);
    }

    #[test]
    fn merged_prefilter_prunes_per_file() {
        let set = set3();
        let files = vec![
            (
                "a.c".to_string(),
                "void f(void) { alpha(1); }\n".to_string(),
            ),
            ("n.c".to_string(), "void f(void) { other(); }\n".to_string()),
        ];
        let outcomes = scan_batch(
            &set,
            &files,
            &ExecOptions {
                prefilter: true,
                ..Default::default()
            },
        );
        assert_eq!(outcomes[0].rules_pruned, 2);
        assert_eq!(outcomes[0].rules.len(), 1);
        assert_eq!(outcomes[0].rules[0].id, "r-alpha");
        assert_eq!(outcomes[0].status(), FileStatus::Matched);
        // No survivors: the file is pruned without being parsed.
        assert_eq!(outcomes[1].rules_pruned, 3);
        assert_eq!(outcomes[1].status(), FileStatus::Pruned);
        assert_eq!(outcomes[1].parses, 0);
    }

    #[test]
    fn suppression_is_per_rule() {
        let set = set3();
        let files = vec![(
            "s.c".to_string(),
            "void f(void) {\n    alpha(1); // spatch-ignore r-alpha\n    beta(2);\n}\n".to_string(),
        )];
        let outcomes = scan_batch(&set, &files, &ExecOptions::default());
        let by_id = |id: &str| outcomes[0].rules.iter().find(|r| r.id == id).unwrap();
        assert_eq!(by_id("r-alpha").suppressed, 1);
        assert_eq!(by_id("r-alpha").findings, 0);
        assert_eq!(by_id("r-alpha").matches, 1, "suppressed, not unmatched");
        assert_eq!(by_id("r-beta").findings, 1);
        assert_eq!(outcomes[0].suppressed, 1);
        assert_eq!(outcomes[0].findings.len(), 1);
        assert_eq!(outcomes[0].findings[0].rule, "r-beta");
    }

    #[test]
    fn transform_rules_report_would_change_without_writing() {
        let set = CompiledRuleSet::from_sources(&[
            src("fix-alpha", "@@ @@\n- alpha(1);\n+ alpha2(1);\n"),
            src("scan-beta", &report_rule("beta")),
        ])
        .unwrap();
        let files = vec![(
            "m.c".to_string(),
            "void f(void) {\n    alpha(1);\n    beta(2);\n}\n".to_string(),
        )];
        let outcomes = scan_batch(&set, &files, &ExecOptions::default());
        let fix = outcomes[0]
            .rules
            .iter()
            .find(|r| r.id == "fix-alpha")
            .unwrap();
        assert_eq!(fix.status, FileStatus::Changed);
        assert!(fix.matches > 0);
        assert_eq!(fix.findings, 0, "transform rules produce no findings");
        let scan = outcomes[0]
            .rules
            .iter()
            .find(|r| r.id == "scan-beta")
            .unwrap();
        assert_eq!(scan.status, FileStatus::Matched);
        assert_eq!(outcomes[0].status(), FileStatus::Changed);
    }

    #[test]
    fn unparsable_file_errors_once_per_rule_one_lex() {
        let set = set3();
        let files = vec![(
            "bad.c".to_string(),
            "alpha beta gamma void broken( {\n".to_string(),
        )];
        let outcomes = scan_batch(&set, &files, &ExecOptions::default());
        assert_eq!(outcomes[0].status(), FileStatus::Error);
        assert_eq!(outcomes[0].rules.len(), 3);
        assert!(outcomes[0]
            .rules
            .iter()
            .all(|r| r.status == FileStatus::Error));
        assert_eq!(outcomes[0].parses, 1, "the parse failure is cached");
        let err = outcomes[0].error.as_deref().unwrap();
        assert!(err.starts_with("rule r-alpha:"), "{err}");
    }

    #[test]
    fn zero_budget_times_rules_out() {
        let set = set3();
        let files = vec![(
            "f.c".to_string(),
            "void f(void) { alpha(1); }\n".to_string(),
        )];
        let outcomes = scan_batch(
            &set,
            &files,
            &ExecOptions {
                timeout_ms: Some(0),
                ..Default::default()
            },
        );
        assert_eq!(outcomes[0].status(), FileStatus::Timeout);
        assert!(outcomes[0]
            .rules
            .iter()
            .all(|r| r.status == FileStatus::Timeout));
        // Quarantined attempts still record their elapsed time, so slow
        // files are visible to `--stats` whatever their status.
        assert!(
            outcomes[0].rules.iter().all(|r| r.seconds > 0.0),
            "{:?}",
            outcomes[0].rules
        );
        assert!(outcomes[0].seconds > 0.0);
    }

    #[test]
    fn error_outcomes_record_seconds() {
        let set = set3();
        let files = vec![(
            "bad.c".to_string(),
            "alpha beta gamma void broken( {\n".to_string(),
        )];
        let outcomes = scan_batch(&set, &files, &ExecOptions::default());
        assert_eq!(outcomes[0].status(), FileStatus::Error);
        assert!(outcomes[0].rules.iter().all(|r| r.seconds > 0.0));
        // And the per-rule seconds survive the report JSON round trip.
        let report = ApplyReport {
            patch: String::new(),
            patch_hash: 0,
            threads: 1,
            prefilter: true,
            resumed: 0,
            total_seconds: 0.0,
            metrics: None,
            lints: Vec::new(),
            explain: None,
            files: outcomes.iter().map(|o| o.to_report()).collect(),
        };
        let back = ApplyReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.files[0].rules, report.files[0].rules);
    }

    #[test]
    fn outcome_order_is_deterministic_across_thread_counts() {
        let set = set3();
        let files: Vec<(String, String)> = (0..6)
            .map(|i| {
                (
                    format!("f{i}.c"),
                    "void f(void) {\n    alpha(1);\n    beta(2);\n    gamma(3);\n}\n".to_string(),
                )
            })
            .collect();
        type FileDigest = (String, Vec<String>, Vec<(String, u32, u32, String)>);
        let runs: Vec<Vec<FileDigest>> = [1, 4, 8]
            .iter()
            .map(|&t| {
                scan_batch(
                    &set,
                    &files,
                    &ExecOptions {
                        threads: t,
                        ..Default::default()
                    },
                )
                .iter()
                .map(|o| {
                    (
                        o.name.clone(),
                        o.rules.iter().map(|r| r.id.clone()).collect(),
                        o.findings.iter().map(key).collect(),
                    )
                })
                .collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
        // Rule order within a file is ascending by id, not completion.
        assert_eq!(runs[0][0].1, ["r-alpha", "r-beta", "r-gamma"]);
    }

    #[test]
    fn scan_corpus_resumes_and_carries_rule_outcomes() {
        let set = set3();
        let hit = (
            "hit.c".to_string(),
            "void f(void) {\n    alpha(1);\n}\n".to_string(),
        );
        let first = scan_corpus(
            &set,
            &mut MemorySource::new(vec![hit.clone()]),
            &CorpusOptions::default(),
            None,
            |_, _, _| {},
        )
        .unwrap();
        assert_eq!(first.patch_hash, set.hash);
        assert_eq!(first.files[0].status, FileStatus::Matched);
        assert!(!first.files[0].rules.is_empty());

        // Round-trip through JSON (the CLI resume path) and re-scan.
        let prior = ApplyReport::from_json(&first.to_json()).unwrap();
        let mut sunk = 0;
        let second = scan_corpus(
            &set,
            &mut MemorySource::new(vec![hit]),
            &CorpusOptions::default(),
            Some(&prior),
            |_, _, _| sunk += 1,
        )
        .unwrap();
        assert_eq!(second.resumed, 1);
        assert_eq!(sunk, 0, "unchanged file skipped");
        assert_eq!(second.files[0].rules, prior.files[0].rules);
        assert_eq!(second.files[0].findings, prior.files[0].findings);
    }

    #[test]
    fn scan_corpus_refuses_no_flow_with_quantified_rules() {
        let set = CompiledRuleSet::from_sources(&[src(
            "needs-flow",
            "@@ @@\n- a();\n+ a2();\n... when exists\nb();\n",
        )])
        .unwrap();
        let err = scan_corpus(
            &set,
            &mut MemorySource::new(vec![(
                "f.c".to_string(),
                "void f(void) { a(); b(); }\n".into(),
            )]),
            &CorpusOptions {
                no_flow: true,
                ..Default::default()
            },
            None,
            |_, _, _| {},
        )
        .unwrap_err();
        assert!(err.message.contains("needs-flow"), "{err}");
        assert!(err.message.contains("when exists"), "{err}");
    }

    /// Streaming-scan counterpart of the corpus determinism test: the
    /// (file × rule) unit pool must yield the same sink stream and
    /// report whatever the thread count and batch size.
    #[test]
    fn scan_corpus_identical_across_threads_and_batch_sizes() {
        let set = set3();
        let files: Vec<(String, String)> = (0..9)
            .map(|i| {
                let body = match i % 3 {
                    0 => "void f(void) {\n    alpha(1);\n    beta(2);\n}\n",
                    1 => "void f(void) {\n    gamma(3);\n}\n",
                    _ => "void f(void) {\n    delta(4);\n}\n",
                };
                (format!("s{i}.c"), body.to_string())
            })
            .collect();
        type Digest = (Vec<String>, Vec<(String, String, usize)>);
        let mut runs: Vec<Digest> = Vec::new();
        for threads in [1, 2, 4] {
            for max_files in [1, 4, 100] {
                let mut sunk = Vec::new();
                let report = scan_corpus(
                    &set,
                    &mut MemorySource::new(files.clone()),
                    &CorpusOptions {
                        threads,
                        batch: crate::corpus::BatchOptions {
                            max_files,
                            max_bytes: usize::MAX,
                        },
                        ..Default::default()
                    },
                    None,
                    |name, _, outcome| {
                        sunk.push(format!("{name}:{}:{}", outcome.status(), outcome.matches()))
                    },
                )
                .unwrap();
                let digest: Vec<(String, String, usize)> = report
                    .files
                    .iter()
                    .map(|f| (f.name.clone(), f.status.to_string(), f.matches))
                    .collect();
                runs.push((sunk, digest));
            }
        }
        for r in &runs[1..] {
            assert_eq!(r.0, runs[0].0, "sink stream differs");
            assert_eq!(r.1, runs[0].1, "report sequence differs");
        }
        let expect: Vec<String> = (0..9).map(|i| format!("s{i}.c")).collect();
        let names: Vec<String> = runs[0].1.iter().map(|(n, _, _)| n.clone()).collect();
        assert_eq!(names, expect, "report keeps walk order");
    }

    #[test]
    fn rule_outcome_json_round_trips() {
        let r = RuleOutcome {
            id: "x\"y".into(),
            status: FileStatus::Matched,
            matches: 3,
            findings: 2,
            suppressed: 1,
            seconds: 1.25e-3,
            kill_stage: Some(KillStage::Completed),
        };
        let v = json::parse(&r.to_json()).unwrap();
        assert_eq!(RuleOutcome::from_json(&v).unwrap(), r);
        // Entries without the stage (older reports) parse to None.
        let r2 = RuleOutcome {
            kill_stage: None,
            ..r.clone()
        };
        let v = json::parse(&r2.to_json()).unwrap();
        assert_eq!(RuleOutcome::from_json(&v).unwrap(), r2);
    }
}
