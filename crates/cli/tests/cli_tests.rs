//! End-to-end tests of the `spatch` binary: diff output, in-place
//! rewriting, thread flag, and error reporting.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn spatch() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spatch"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spatch-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

const RENAME_PATCH: &str = "@@\nexpression e;\n@@\n- old_api(e);\n+ new_api(e);\n";

#[test]
fn prints_unified_diff_by_default() {
    let dir = tmpdir("diff");
    let patch = dir.join("p.cocci");
    let file = dir.join("t.c");
    fs::write(&patch, RENAME_PATCH).unwrap();
    fs::write(&file, "void f(void) {\n    old_api(1);\n}\n").unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("-    old_api(1);"), "{stdout}");
    assert!(stdout.contains("+    new_api(1);"), "{stdout}");
    // The file itself is untouched.
    assert!(fs::read_to_string(&file).unwrap().contains("old_api"));
}

#[test]
fn in_place_rewrites_files() {
    let dir = tmpdir("inplace");
    let patch = dir.join("p.cocci");
    fs::write(&patch, RENAME_PATCH).unwrap();
    let mut files = Vec::new();
    for i in 0..4 {
        let f = dir.join(format!("t{i}.c"));
        fs::write(&f, format!("void f{i}(void) {{ old_api({i}); }}\n")).unwrap();
        files.push(f);
    }

    let mut cmd = spatch();
    cmd.args(["--sp-file"])
        .arg(&patch)
        .args(["--in-place", "-j", "2", "--quiet"]);
    for f in &files {
        cmd.arg(f);
    }
    let out = cmd.output().unwrap();
    assert!(out.status.success(), "{out:?}");
    for (i, f) in files.iter().enumerate() {
        let text = fs::read_to_string(f).unwrap();
        assert!(text.contains(&format!("new_api({i});")), "{text}");
    }
}

#[test]
fn reports_parse_errors_and_fails() {
    let dir = tmpdir("err");
    let patch = dir.join("p.cocci");
    let file = dir.join("broken.c");
    fs::write(&patch, RENAME_PATCH).unwrap();
    fs::write(&file, "void f( {\n").unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .arg(&file)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("broken.c"), "{stderr}");
}

#[test]
fn bad_patch_is_reported() {
    let dir = tmpdir("badpatch");
    let patch = dir.join("p.cocci");
    let file = dir.join("t.c");
    fs::write(&patch, "this is not SMPL").unwrap();
    fs::write(&file, "int x;\n").unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .arg(&file)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("semantic patch error"), "{stderr}");
}

#[test]
fn no_match_exits_zero() {
    let dir = tmpdir("nomatch");
    let patch = dir.join("p.cocci");
    let file = dir.join("t.c");
    fs::write(&patch, RENAME_PATCH).unwrap();
    fs::write(&file, "void f(void) { other(); }\n").unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(out.stdout.is_empty());
}
