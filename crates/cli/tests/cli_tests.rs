//! End-to-end tests of the `spatch` binary: diff output, in-place
//! rewriting, thread flag, and error reporting.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn spatch() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spatch"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spatch-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

const RENAME_PATCH: &str = "@@\nexpression e;\n@@\n- old_api(e);\n+ new_api(e);\n";

#[test]
fn prints_unified_diff_by_default() {
    let dir = tmpdir("diff");
    let patch = dir.join("p.cocci");
    let file = dir.join("t.c");
    fs::write(&patch, RENAME_PATCH).unwrap();
    fs::write(&file, "void f(void) {\n    old_api(1);\n}\n").unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("-    old_api(1);"), "{stdout}");
    assert!(stdout.contains("+    new_api(1);"), "{stdout}");
    // The file itself is untouched.
    assert!(fs::read_to_string(&file).unwrap().contains("old_api"));
}

#[test]
fn in_place_rewrites_files() {
    let dir = tmpdir("inplace");
    let patch = dir.join("p.cocci");
    fs::write(&patch, RENAME_PATCH).unwrap();
    let mut files = Vec::new();
    for i in 0..4 {
        let f = dir.join(format!("t{i}.c"));
        fs::write(&f, format!("void f{i}(void) {{ old_api({i}); }}\n")).unwrap();
        files.push(f);
    }

    let mut cmd = spatch();
    cmd.args(["--sp-file"])
        .arg(&patch)
        .args(["--in-place", "-j", "2", "--quiet"]);
    for f in &files {
        cmd.arg(f);
    }
    let out = cmd.output().unwrap();
    assert!(out.status.success(), "{out:?}");
    for (i, f) in files.iter().enumerate() {
        let text = fs::read_to_string(f).unwrap();
        assert!(text.contains(&format!("new_api({i});")), "{text}");
    }
}

#[test]
fn reports_parse_errors_and_fails() {
    let dir = tmpdir("err");
    let patch = dir.join("p.cocci");
    let file = dir.join("broken.c");
    fs::write(&patch, RENAME_PATCH).unwrap();
    // Contains the pattern's atoms (so the prefilter does not prune it)
    // but does not parse.
    fs::write(&file, "void f( {\n    old_api(1);\n").unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .arg(&file)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("broken.c"), "{stderr}");
}

#[test]
fn bad_patch_is_reported() {
    let dir = tmpdir("badpatch");
    let patch = dir.join("p.cocci");
    let file = dir.join("t.c");
    fs::write(&patch, "this is not SMPL").unwrap();
    fs::write(&file, "int x;\n").unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .arg(&file)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("semantic patch error"), "{stderr}");
}

#[test]
fn output_flag_writes_patched_file_elsewhere() {
    let dir = tmpdir("oflag");
    let patch = dir.join("p.cocci");
    let file = dir.join("t.c");
    let out_file = dir.join("patched.c");
    fs::write(&patch, RENAME_PATCH).unwrap();
    fs::write(&file, "void f(void) {\n    old_api(7);\n}\n").unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .args(["-o"])
        .arg(&out_file)
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    // Original untouched, -o target holds the rewrite.
    assert!(fs::read_to_string(&file).unwrap().contains("old_api(7);"));
    let patched = fs::read_to_string(&out_file).unwrap();
    assert!(patched.contains("new_api(7);"), "{patched}");
    assert!(!patched.contains("old_api"), "{patched}");
}

#[test]
fn usage_errors_exit_code_2() {
    // No arguments at all.
    let out = spatch().output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage:"), "{stderr}");

    // --sp-file without any target files.
    let dir = tmpdir("nofiles");
    let patch = dir.join("p.cocci");
    fs::write(&patch, RENAME_PATCH).unwrap();
    let out = spatch().args(["--sp-file"]).arg(&patch).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // Unknown option.
    let out = spatch().args(["--frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // Unreadable patch file.
    let out = spatch()
        .args(["--sp-file"])
        .arg(dir.join("missing.cocci"))
        .arg(dir.join("also-missing.c"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn whole_directory_diff_then_in_place_roundtrip() {
    // The workflow the paper describes: review the diff across a tree,
    // then enact it. Exercises both modes over the same temp directory.
    let dir = tmpdir("tree");
    let patch = dir.join("p.cocci");
    fs::write(&patch, RENAME_PATCH).unwrap();
    let mut files = Vec::new();
    for i in 0..3 {
        let f = dir.join(format!("mod{i}.c"));
        fs::write(
            &f,
            format!("void stage{i}(void) {{\n    old_api({i});\n    keep({i});\n}}\n"),
        )
        .unwrap();
        files.push(f);
    }
    // One file that must not match (and must not be rewritten).
    let untouched = dir.join("other.c");
    fs::write(&untouched, "void other(void) { keep(9); }\n").unwrap();
    files.push(untouched.clone());

    // Pass 1: diff mode shows every change, touches nothing.
    let mut cmd = spatch();
    cmd.args(["--sp-file"]).arg(&patch);
    for f in &files {
        cmd.arg(f);
    }
    let out = cmd.output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    for i in 0..3 {
        assert!(stdout.contains(&format!("-    old_api({i});")), "{stdout}");
        assert!(stdout.contains(&format!("+    new_api({i});")), "{stdout}");
    }
    for f in &files {
        assert!(!fs::read_to_string(f).unwrap().contains("new_api"));
    }

    // Pass 2: --in-place enacts exactly the reviewed diff.
    let mut cmd = spatch();
    cmd.args(["--sp-file"])
        .arg(&patch)
        .args(["--in-place", "--quiet"]);
    for f in &files {
        cmd.arg(f);
    }
    let out = cmd.output().unwrap();
    assert!(out.status.success(), "{out:?}");
    for (i, f) in files.iter().take(3).enumerate() {
        let text = fs::read_to_string(f).unwrap();
        assert!(text.contains(&format!("new_api({i});")), "{text}");
        assert!(text.contains(&format!("keep({i});")), "{text}");
    }
    assert_eq!(
        fs::read_to_string(&untouched).unwrap(),
        "void other(void) { keep(9); }\n"
    );
}

#[test]
fn directory_mode_walks_ignores_and_reports() {
    use cocci_core::{ApplyReport, FileStatus};

    // A nested tree: two matching files at different depths, one
    // non-matching (prefilter-prunable) file, one ignored directory, one
    // ignored-by-pattern file, and one non-source file.
    let dir = tmpdir("dirmode");
    let patch = dir.join("p.cocci");
    fs::write(&patch, RENAME_PATCH).unwrap();
    let tree = dir.join("tree");
    fs::create_dir_all(tree.join("sub/deep")).unwrap();
    fs::create_dir_all(tree.join("build")).unwrap();
    fs::write(tree.join(".gitignore"), "build/\n*.skip.c\n").unwrap();
    fs::write(tree.join("top.c"), "void t(void) { old_api(1); }\n").unwrap();
    fs::write(
        tree.join("sub/deep/leaf.c"),
        "void l(void) { old_api(2); }\n",
    )
    .unwrap();
    fs::write(tree.join("sub/other.c"), "void o(void) { keep(3); }\n").unwrap();
    fs::write(tree.join("sub/x.skip.c"), "void s(void) { old_api(4); }\n").unwrap();
    fs::write(tree.join("build/gen.c"), "void g(void) { old_api(5); }\n").unwrap();
    fs::write(tree.join("notes.md"), "not C at all {{{\n").unwrap();

    let report_path = dir.join("report.json");
    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .args(["--in-place", "--quiet", "--report"])
        .arg(&report_path)
        .arg(&tree)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    // Both matching files rewritten, at every depth.
    assert!(fs::read_to_string(tree.join("top.c"))
        .unwrap()
        .contains("new_api(1);"));
    assert!(fs::read_to_string(tree.join("sub/deep/leaf.c"))
        .unwrap()
        .contains("new_api(2);"));
    // Ignored / non-matching / non-source files untouched.
    for (path, marker) in [
        ("sub/other.c", "keep(3);"),
        ("sub/x.skip.c", "old_api(4);"),
        ("build/gen.c", "old_api(5);"),
    ] {
        assert!(
            fs::read_to_string(tree.join(path))
                .unwrap()
                .contains(marker),
            "{path} was modified"
        );
    }

    // The JSON report round-trips and accounts for exactly the walked
    // files: 2 changed + 1 pruned (ignored/non-source files never appear).
    let report = ApplyReport::from_json(&fs::read_to_string(&report_path).unwrap()).unwrap();
    assert_eq!(report.files.len(), 3, "{report:?}");
    assert_eq!(report.count(FileStatus::Changed), 2);
    assert_eq!(report.count(FileStatus::Pruned), 1);
    assert_eq!(report.count(FileStatus::Error), 0);
    assert!(report.prefilter);
    let changed_names: Vec<&str> = report
        .files
        .iter()
        .filter(|f| f.status == FileStatus::Changed)
        .map(|f| f.name.as_str())
        .collect();
    assert!(changed_names.iter().any(|n| n.ends_with("top.c")));
    assert!(changed_names.iter().any(|n| n.ends_with("leaf.c")));

    // --no-prefilter processes the same set, now fully parsed.
    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .args(["--no-prefilter", "--quiet", "--report"])
        .arg(&report_path)
        .arg(&tree)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let report = ApplyReport::from_json(&fs::read_to_string(&report_path).unwrap()).unwrap();
    assert_eq!(report.files.len(), 3);
    assert_eq!(report.count(FileStatus::Pruned), 0);
    assert_eq!(report.count(FileStatus::Unmatched), 3); // already rewritten
    assert!(!report.prefilter);
}

#[test]
fn uc_patch_across_generated_corpus_tree() {
    use cocci_core::{ApplyReport, FileStatus};
    use cocci_workloads::corpus::{write_corpus_tree, CorpusTreeSpec};
    use cocci_workloads::patches::UC1_LIKWID;

    // The acceptance scenario: one command applies a UC patch across a
    // generated multi-directory tree, and the JSON report accounts for
    // every walked file with a pruned/matched/changed/error outcome.
    let dir = tmpdir("uccorpus");
    let tree = dir.join("tree");
    let spec = CorpusTreeSpec {
        files_per_family: 3,
        functions_per_file: 4,
        seed: 0xACCE,
    };
    let stats = write_corpus_tree(&tree, &spec).unwrap();
    let patch = dir.join("uc1.cocci");
    fs::write(&patch, UC1_LIKWID).unwrap();
    let report_path = dir.join("report.json");

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .args(["--in-place", "--quiet", "--jobs", "2", "--report"])
        .arg(&report_path)
        .arg(&tree)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    let report = ApplyReport::from_json(&fs::read_to_string(&report_path).unwrap()).unwrap();
    // Every walkable file is accounted for, each with a classified outcome.
    assert_eq!(report.files.len(), stats.walkable, "{report:?}");
    assert_eq!(report.count(FileStatus::Error), 0, "{report:?}");
    // Only the omp/ subtree can match UC1; the rest is pruned before
    // parsing (cuda/kernel/raw families lack the patch's atoms).
    assert_eq!(report.count(FileStatus::Changed), spec.files_per_family);
    assert!(
        report.count(FileStatus::Pruned) >= 2 * spec.files_per_family,
        "{}",
        report.summary()
    );
    // And the transformation really landed on disk.
    let patched = fs::read_to_string(tree.join("omp/omp_0.c")).unwrap();
    assert!(patched.contains("#include <likwid-marker.h>"), "{patched}");
    assert!(
        patched.contains("LIKWID_MARKER_START(__func__);"),
        "{patched}"
    );
}

#[test]
fn extra_ignore_flag_excludes_subtrees() {
    let dir = tmpdir("ignoreflag");
    let patch = dir.join("p.cocci");
    fs::write(&patch, RENAME_PATCH).unwrap();
    let tree = dir.join("tree");
    fs::create_dir_all(tree.join("vendor")).unwrap();
    fs::write(tree.join("mine.c"), "void m(void) { old_api(1); }\n").unwrap();
    fs::write(
        tree.join("vendor/theirs.c"),
        "void v(void) { old_api(2); }\n",
    )
    .unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .args(["--in-place", "--quiet", "--ignore", "vendor/"])
        .arg(&tree)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(fs::read_to_string(tree.join("mine.c"))
        .unwrap()
        .contains("new_api"));
    assert!(fs::read_to_string(tree.join("vendor/theirs.c"))
        .unwrap()
        .contains("old_api"));
}

#[test]
fn no_match_exits_zero() {
    let dir = tmpdir("nomatch");
    let patch = dir.join("p.cocci");
    let file = dir.join("t.c");
    fs::write(&patch, RENAME_PATCH).unwrap();
    fs::write(&file, "void f(void) { other(); }\n").unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(out.stdout.is_empty());
}

const PROBE_PATCH: &str =
    "@@\nexpression b;\n@@\n- probe_begin(b);\n+ probe_enter(b);\n...\nprobe_end(b);\n";

#[test]
fn no_flow_flag_restores_tree_dots_semantics() {
    // The disagreement file: an early return escapes the dots. The
    // default (CFG) semantics refuses; --no-flow falls back to the
    // tree-sequence reading and transforms it.
    let dir = tmpdir("noflow");
    let patch = dir.join("p.cocci");
    let file = dir.join("t.c");
    fs::write(&patch, PROBE_PATCH).unwrap();
    let src = "void f(int x, double *q) {\n    probe_begin(q);\n    if (x)\n        return;\n    probe_end(q);\n}\n";
    fs::write(&file, src).unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.is_empty(), "CFG semantics must refuse: {stdout}");

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .arg("--no-flow")
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("+    probe_enter(q);"), "{stdout}");
}

#[test]
fn timeout_ms_records_timeout_status_without_failing_run() {
    use cocci_core::{ApplyReport, FileStatus};

    let dir = tmpdir("timeout");
    let patch = dir.join("p.cocci");
    let file = dir.join("t.c");
    let report_path = dir.join("report.json");
    fs::write(&patch, RENAME_PATCH).unwrap();
    fs::write(&file, "void f(void) {\n    old_api(1);\n}\n").unwrap();

    // A zero budget trips at the first rule boundary for every file;
    // the run still succeeds (timeouts are quarantine, not failure).
    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .args(["--timeout-ms", "0", "--report"])
        .arg(&report_path)
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("time budget"), "{stderr}");
    let report = ApplyReport::from_json(&fs::read_to_string(&report_path).unwrap()).unwrap();
    assert_eq!(report.count(FileStatus::Timeout), 1, "{report:?}");
    assert_eq!(report.count(FileStatus::Error), 0);
    // The file itself is untouched.
    assert!(fs::read_to_string(&file).unwrap().contains("old_api"));
}

#[test]
fn resume_skips_unchanged_files() {
    use cocci_core::{ApplyReport, FileStatus};

    let dir = tmpdir("resume");
    let patch = dir.join("p.cocci");
    fs::write(&patch, RENAME_PATCH).unwrap();
    let hit = dir.join("hit.c");
    let miss = dir.join("miss.c");
    fs::write(&hit, "void f(void) {\n    old_api(1);\n}\n").unwrap();
    fs::write(&miss, "void g(void) {\n    keep(2);\n}\n").unwrap();
    let r1 = dir.join("r1.json");
    let r2 = dir.join("r2.json");

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .args(["--quiet", "--report"])
        .arg(&r1)
        .arg(&hit)
        .arg(&miss)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    // Touch only hit.c, then resume from the first report: miss.c must
    // be skipped with its previous status copied.
    fs::write(&hit, "void f(void) {\n    old_api(1);\n    more();\n}\n").unwrap();
    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .args(["--resume"])
        .arg(&r1)
        .args(["--report"])
        .arg(&r2)
        .arg(&hit)
        .arg(&miss)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("resumed: 1"), "{stderr}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("hit.c"),
        "changed file re-processed: {stdout}"
    );
    assert!(!stdout.contains("miss.c"), "{stdout}");
    let report = ApplyReport::from_json(&fs::read_to_string(&r2).unwrap()).unwrap();
    assert_eq!(report.resumed, 1);
    let miss_entry = report
        .files
        .iter()
        .find(|f| f.name.ends_with("miss.c"))
        .unwrap();
    assert_eq!(miss_entry.status, FileStatus::Pruned, "status copied");

    // A bogus resume report is a hard usage error, before any work.
    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .args(["--resume"])
        .arg(dir.join("nope.json"))
        .arg(&hit)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn resume_retries_previously_timed_out_files() {
    use cocci_core::{ApplyReport, FileStatus};

    let dir = tmpdir("resume-retry");
    let patch = dir.join("p.cocci");
    fs::write(&patch, RENAME_PATCH).unwrap();
    let hit = dir.join("hit.c");
    let miss = dir.join("miss.c");
    fs::write(&hit, "void f(void) {\n    old_api(1);\n}\n").unwrap();
    fs::write(&miss, "void g(void) {\n    keep(2);\n}\n").unwrap();
    let r1 = dir.join("r1.json");
    let r2 = dir.join("r2.json");

    // First pass under a zero budget: hit.c times out before its first
    // rule (miss.c is pruned by the prefilter before the budget check).
    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .args(["--timeout-ms", "0", "--quiet", "--report"])
        .arg(&r1)
        .arg(&hit)
        .arg(&miss)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let report = ApplyReport::from_json(&fs::read_to_string(&r1).unwrap()).unwrap();
    assert_eq!(report.count(FileStatus::Timeout), 1, "{report:?}");
    assert_eq!(report.count(FileStatus::Pruned), 1, "{report:?}");

    // Resume without the budget: the timed-out file is re-attempted
    // (and now transforms); only the pruned file's status is copied.
    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .args(["--in-place", "--resume"])
        .arg(&r1)
        .args(["--report"])
        .arg(&r2)
        .arg(&hit)
        .arg(&miss)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let report = ApplyReport::from_json(&fs::read_to_string(&r2).unwrap()).unwrap();
    assert_eq!(report.resumed, 1, "only the pruned miss.c skips");
    assert_eq!(report.count(FileStatus::Changed), 1, "{report:?}");
    assert_eq!(report.count(FileStatus::Timeout), 0, "{report:?}");
    assert!(
        fs::read_to_string(&hit).unwrap().contains("new_api(1);"),
        "retried file was rewritten"
    );
}

#[test]
fn resume_refuses_report_from_different_patch() {
    let dir = tmpdir("resume-mismatch");
    let patch_a = dir.join("a.cocci");
    let patch_b = dir.join("b.cocci");
    fs::write(&patch_a, RENAME_PATCH).unwrap();
    fs::write(&patch_b, PROBE_PATCH).unwrap();
    let file = dir.join("t.c");
    fs::write(&file, "void f(void) { old_api(1); }\n").unwrap();
    let r1 = dir.join("r1.json");

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch_a)
        .args(["--quiet", "--report"])
        .arg(&r1)
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    // Resuming with a different patch must refuse before doing work.
    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch_b)
        .args(["--resume"])
        .arg(&r1)
        .arg(&file)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("not produced by this semantic patch"),
        "{stderr}"
    );

    // Same patch resumes fine.
    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch_a)
        .args(["--resume"])
        .arg(&r1)
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn output_flag_refuses_directory_and_multi_file_targets() {
    let dir = tmpdir("oflag-multi");
    let patch = dir.join("p.cocci");
    fs::write(&patch, RENAME_PATCH).unwrap();
    let tree = dir.join("tree");
    fs::create_dir_all(&tree).unwrap();
    fs::write(tree.join("a.c"), "void a(void) { old_api(1); }\n").unwrap();
    fs::write(tree.join("b.c"), "void b(void) { old_api(2); }\n").unwrap();

    // Directory target with -o: refused.
    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .args(["-o"])
        .arg(dir.join("out.c"))
        .arg(&tree)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("single input file"), "{stderr}");

    // Two explicit files with -o: refused.
    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .args(["-o"])
        .arg(dir.join("out.c"))
        .arg(tree.join("a.c"))
        .arg(tree.join("b.c"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

// ---- report mode ----

/// Transformation-free patch with a position metavariable: the findings
/// engine's canonical input.
const SCAN_PATCH: &str = "@scan@\nexpression e;\nposition p;\n@@\nold_api(e)@p;\n";

/// A flow-sensitive reporting patch (statement dots): positions bind at
/// CFG match sites on the flow route, at tree sites under --no-flow.
const SCAN_DOTS_PATCH: &str =
    "@pair@\nexpression b;\nposition p;\n@@\nprobe_begin(b)@p;\n...\nprobe_end(b);\n";

fn write_scan_corpus(dir: &std::path::Path) -> PathBuf {
    let tree = dir.join("tree");
    fs::create_dir_all(&tree).unwrap();
    fs::write(
        tree.join("a.c"),
        "void f(void) {\n    setup();\n    old_api(1);\n    old_api(q + 2);\n}\n",
    )
    .unwrap();
    fs::write(tree.join("b.c"), "void g(void) {\n    old_api(7);\n}\n").unwrap();
    fs::write(tree.join("c.c"), "void h(void) {\n    other();\n}\n").unwrap();
    tree
}

/// Extract the `(path-suffix, line, col)` finding set from grep-style
/// text output.
fn text_finding_set(stdout: &str) -> Vec<(String, u32, u32)> {
    let mut out: Vec<(String, u32, u32)> = stdout
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| {
            let mut it = l.splitn(4, ':');
            let path = it.next().unwrap();
            let line: u32 = it.next().unwrap().parse().unwrap();
            let col: u32 = it.next().unwrap().parse().unwrap();
            let file = path.rsplit('/').next().unwrap().to_string();
            (file, line, col)
        })
        .collect();
    out.sort();
    out
}

#[test]
fn report_mode_auto_detects_and_prints_grep_style_findings() {
    let dir = tmpdir("report-text");
    let patch = dir.join("p.cocci");
    fs::write(&patch, SCAN_PATCH).unwrap();
    let tree = write_scan_corpus(&dir);

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .arg("--quiet")
        .arg(&tree)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        text_finding_set(&stdout),
        vec![
            ("a.c".to_string(), 3, 5),
            ("a.c".to_string(), 4, 5),
            ("b.c".to_string(), 2, 5),
        ],
        "{stdout}"
    );
    assert!(stdout.contains(": scan: "), "{stdout}");
    // No file was rewritten.
    assert!(fs::read_to_string(tree.join("a.c"))
        .unwrap()
        .contains("old_api(1);"));
}

#[test]
fn report_mode_refuses_in_place_and_output_and_patch_mode_refuses_format() {
    let dir = tmpdir("report-refuse");
    let patch = dir.join("p.cocci");
    let file = dir.join("t.c");
    fs::write(&patch, SCAN_PATCH).unwrap();
    fs::write(&file, "void f(void) { old_api(1); }\n").unwrap();

    for flags in [vec!["--in-place"], vec!["-o", "out.c"]] {
        let out = spatch()
            .args(["--sp-file"])
            .arg(&patch)
            .args(&flags)
            .arg(&file)
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{flags:?}: {out:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("report mode"), "{stderr}");
    }

    // --format needs report mode.
    let transform = dir.join("tp.cocci");
    fs::write(&transform, RENAME_PATCH).unwrap();
    let out = spatch()
        .args(["--sp-file"])
        .arg(&transform)
        .args(["--format", "json"])
        .arg(&file)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // A transforming patch cannot be forced into report mode either:
    // its rules rewrite the in-memory text between matches, so later
    // findings would carry line/col of a text no on-disk file has.
    let out = spatch()
        .args(["--sp-file"])
        .arg(&transform)
        .args(["--mode", "report", "--quiet"])
        .arg(&file)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("transformation-free"), "{stderr}");
    assert!(fs::read_to_string(&file).unwrap().contains("old_api"));
}

#[test]
fn report_formats_agree_on_the_finding_set() {
    use cocci_core::report::json;
    use cocci_core::ApplyReport;

    let dir = tmpdir("report-formats");
    let patch = dir.join("p.cocci");
    fs::write(&patch, SCAN_PATCH).unwrap();
    let tree = write_scan_corpus(&dir);

    let run = |format: &str| -> String {
        let out = spatch()
            .args(["--sp-file"])
            .arg(&patch)
            .args(["--format", format, "--quiet"])
            .arg(&tree)
            .output()
            .unwrap();
        assert!(out.status.success(), "{format}: {out:?}");
        String::from_utf8(out.stdout).unwrap()
    };

    let text = text_finding_set(&run("text"));
    assert_eq!(text.len(), 3);

    // JSON: findings embedded in the apply report.
    let report = ApplyReport::from_json(&run("json")).unwrap();
    let mut from_json: Vec<(String, u32, u32)> = report
        .files
        .iter()
        .flat_map(|f| &f.findings)
        .map(|fd| {
            (
                fd.path.rsplit('/').next().unwrap().to_string(),
                fd.line,
                fd.col,
            )
        })
        .collect();
    from_json.sort();
    assert_eq!(from_json, text);

    // SARIF: same set out of the results array.
    let sarif = json::parse(&run("sarif")).unwrap();
    let runs = sarif
        .as_object()
        .unwrap()
        .get("runs")
        .unwrap()
        .as_array()
        .unwrap();
    let results = runs[0]
        .as_object()
        .unwrap()
        .get("results")
        .unwrap()
        .as_array()
        .unwrap();
    let mut from_sarif: Vec<(String, u32, u32)> = results
        .iter()
        .map(|r| {
            let loc = r
                .as_object()
                .unwrap()
                .get("locations")
                .unwrap()
                .as_array()
                .unwrap()[0]
                .as_object()
                .unwrap()
                .get("physicalLocation")
                .unwrap()
                .as_object()
                .unwrap();
            let uri = loc
                .get("artifactLocation")
                .unwrap()
                .as_object()
                .unwrap()
                .get("uri")
                .unwrap()
                .as_str()
                .unwrap();
            let region = loc.get("region").unwrap().as_object().unwrap();
            (
                uri.rsplit('/').next().unwrap().to_string(),
                region.get("startLine").unwrap().as_f64().unwrap() as u32,
                region.get("startColumn").unwrap().as_f64().unwrap() as u32,
            )
        })
        .collect();
    from_sarif.sort();
    assert_eq!(from_sarif, text);
}

#[test]
fn report_mode_works_under_no_flow() {
    // A dots-free-equivalent file: tree and CFG routes must emit the
    // identical finding set.
    let dir = tmpdir("report-noflow");
    let patch = dir.join("p.cocci");
    fs::write(&patch, SCAN_DOTS_PATCH).unwrap();
    let file = dir.join("t.c");
    fs::write(
        &file,
        "void f(double *q) {\n    probe_begin(q);\n    work(q);\n    probe_end(q);\n}\n",
    )
    .unwrap();

    let run = |extra: &[&str]| -> Vec<(String, u32, u32)> {
        let out = spatch()
            .args(["--sp-file"])
            .arg(&patch)
            .args(extra)
            .arg("--quiet")
            .arg(&file)
            .output()
            .unwrap();
        assert!(out.status.success(), "{extra:?}: {out:?}");
        text_finding_set(&String::from_utf8(out.stdout).unwrap())
    };
    let flow = run(&[]);
    let tree = run(&["--no-flow"]);
    assert_eq!(flow, vec![("t.c".to_string(), 2, 5)]);
    assert_eq!(flow, tree, "tree and flow routes agree on findings");
}

#[test]
fn resume_carries_findings_forward() {
    use cocci_core::ApplyReport;

    let dir = tmpdir("report-resume");
    let patch = dir.join("p.cocci");
    fs::write(&patch, SCAN_PATCH).unwrap();
    let tree = write_scan_corpus(&dir);
    let r1 = dir.join("r1.json");
    let r2 = dir.join("r2.json");

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .args(["--quiet", "--report"])
        .arg(&r1)
        .arg(&tree)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let first = text_finding_set(&String::from_utf8(out.stdout).unwrap());
    assert_eq!(first.len(), 3);

    // Nothing changed: every file resumes, and the findings — not just
    // the statuses — still come out in full.
    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .args(["--quiet", "--resume"])
        .arg(&r1)
        .args(["--report"])
        .arg(&r2)
        .arg(&tree)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let resumed = text_finding_set(&String::from_utf8(out.stdout).unwrap());
    assert_eq!(resumed, first, "findings carried through --resume");
    let report = ApplyReport::from_json(&fs::read_to_string(&r2).unwrap()).unwrap();
    assert_eq!(report.resumed, 3);
    let total: usize = report.files.iter().map(|f| f.findings.len()).sum();
    assert_eq!(total, 3);
}

#[test]
fn script_print_report_authors_messages() {
    let dir = tmpdir("report-script");
    let patch = dir.join("p.cocci");
    fs::write(
        &patch,
        "@r@\nexpression e;\nposition p;\n@@\nold_api(e)@p;\n\n\
         @script:python s depends on r@\np << r.p;\ne << r.e;\n@@\n\
         coccilib.report.print_report(p[0], \"old_api called with \" + e)\n",
    )
    .unwrap();
    let file = dir.join("t.c");
    fs::write(&file, "void f(void) {\n    old_api(q + 2);\n}\n").unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .arg("--quiet")
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains(": s: old_api called with q + 2"),
        "{stdout}"
    );
    assert!(stdout.contains(":2:5:"), "{stdout}");
    // The scanned rule's own generic `matched` finding is suppressed —
    // the script authors the message, and emitting both would report
    // every site twice.
    assert!(!stdout.contains(": r: matched"), "{stdout}");
    assert_eq!(stdout.lines().count(), 1, "{stdout}");
}

#[test]
fn non_reporting_script_does_not_swallow_findings() {
    // The inheriting script only *computes* (never calls print_report):
    // the scanned rule's generic findings must stand in — the matches
    // may not silently vanish from report output.
    let dir = tmpdir("report-script-silent");
    let patch = dir.join("p.cocci");
    fs::write(
        &patch,
        "@r@\nexpression e;\nposition p;\n@@\nold_api(e)@p;\n\n\
         @script:python s depends on r@\ne << r.e;\n@@\n\
         coccinelle.tag = \"seen_\" + e\n",
    )
    .unwrap();
    let file = dir.join("t.c");
    fs::write(&file, "void f(void) {\n    old_api(5);\n}\n").unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .arg("--quiet")
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains(": r: matched"), "{stdout}");
    assert!(stdout.contains(":2:5:"), "{stdout}");
    assert_eq!(stdout.lines().count(), 1, "{stdout}");
}

// ---------------------------------------------------------------------------
// Scan mode: `spatch scan --rules <dir>` — N rules, one parse per file.

/// Two report-only rules with metadata headers: `use-beta` (warning,
/// custom message) fires on `alpha(...)`, `no-gamma` (default note) on
/// `gamma(...)`.
fn write_rules_dir(dir: &std::path::Path) -> PathBuf {
    let rules = dir.join("rules");
    fs::create_dir_all(&rules).unwrap();
    fs::write(
        rules.join("use_beta.cocci"),
        "// spatch-rule: use-beta\n// spatch-severity: warning\n\
         // spatch-message: alpha() is deprecated, use beta()\n\
         @r@\nexpression e;\nposition p;\n@@\nalpha(e)@p;\n",
    )
    .unwrap();
    fs::write(
        rules.join("no_gamma.cocci"),
        "// spatch-rule: no-gamma\n@r@\nexpression e;\nposition p;\n@@\ngamma(e)@p;\n",
    )
    .unwrap();
    rules
}

/// Corpus for the rule dir above: two `alpha` sites (one suppressed),
/// one `gamma` site, one file neither rule can touch.
fn write_scan_tree(dir: &std::path::Path) -> PathBuf {
    let tree = dir.join("tree");
    fs::create_dir_all(&tree).unwrap();
    fs::write(
        tree.join("a.c"),
        "void f(void) {\n    alpha(1);\n    // spatch-ignore use-beta\n    alpha(2);\n    gamma(3);\n}\n",
    )
    .unwrap();
    fs::write(tree.join("b.c"), "void g(void) {\n    alpha(q + 7);\n}\n").unwrap();
    fs::write(tree.join("c.c"), "void h(void) {\n    other();\n}\n").unwrap();
    tree
}

#[test]
fn scan_mode_attributes_findings_to_rules_and_counts_suppressions() {
    let dir = tmpdir("scan-happy");
    let rules = write_rules_dir(&dir);
    let tree = write_scan_tree(&dir);

    let out = spatch()
        .arg("scan")
        .arg("--rules")
        .arg(&rules)
        .arg(&tree)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();

    // a.c: alpha(1) + gamma(3) report, alpha(2) is suppressed; b.c: one.
    let findings = text_finding_set(&stdout);
    assert_eq!(findings.len(), 3, "{stdout}");
    assert!(
        stdout.contains(": use-beta: alpha() is deprecated, use beta()"),
        "{stdout}"
    );
    assert!(stdout.contains(": no-gamma: "), "{stdout}");
    assert!(!stdout.contains(":4:"), "suppressed site leaked: {stdout}");
    assert!(stderr.contains("1 suppressed"), "{stderr}");
    assert!(
        stderr.contains("3 finding(s), 1 suppressed, across 3 file(s) with 2 rule(s)"),
        "{stderr}"
    );
}

#[test]
fn scan_mode_flag_validation() {
    // scan without --rules.
    let out = spatch().arg("scan").arg("x.c").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("scan mode requires --rules"), "{stderr}");

    // Patch-only flags are rejected inside scan mode.
    for bad in [&["--in-place"][..], &["--sp-file", "p.cocci"][..]] {
        let dir = tmpdir("scan-flags");
        let rules = write_rules_dir(&dir);
        let out = spatch()
            .arg("scan")
            .arg("--rules")
            .arg(&rules)
            .args(bad)
            .arg("x.c")
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{bad:?}: {out:?}");
    }
}

#[test]
fn scan_refuses_duplicate_rule_ids_naming_both_sources() {
    let dir = tmpdir("scan-dup");
    let rules = dir.join("rules");
    fs::create_dir_all(&rules).unwrap();
    let rule = "// spatch-rule: dup\n@r@\nexpression e;\nposition p;\n@@\nalpha(e)@p;\n";
    fs::write(rules.join("one.cocci"), rule).unwrap();
    fs::write(rules.join("two.cocci"), rule).unwrap();

    let out = spatch()
        .arg("scan")
        .arg("--rules")
        .arg(&rules)
        .arg("x.c")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("duplicate rule id `dup`"), "{stderr}");
    assert!(stderr.contains("one.cocci"), "{stderr}");
    assert!(stderr.contains("two.cocci"), "{stderr}");
}

#[test]
fn scan_load_error_names_the_offending_file() {
    let dir = tmpdir("scan-badrule");
    let rules = dir.join("rules");
    fs::create_dir_all(&rules).unwrap();
    fs::write(rules.join("broken.cocci"), "this is not smpl\n").unwrap();

    let out = spatch()
        .arg("scan")
        .arg("--rules")
        .arg(&rules)
        .arg("x.c")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("broken.cocci"), "{stderr}");

    // An empty rules dir is refused too.
    let empty = dir.join("empty");
    fs::create_dir_all(&empty).unwrap();
    let out = spatch()
        .arg("scan")
        .arg("--rules")
        .arg(&empty)
        .arg("x.c")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("no .cocci files"), "{stderr}");
}

#[test]
fn scan_runs_transform_rules_without_writing() {
    let dir = tmpdir("scan-mixed");
    let rules = write_rules_dir(&dir);
    fs::write(
        rules.join("rename.cocci"),
        format!("// spatch-rule: rename-old\n{RENAME_PATCH}"),
    )
    .unwrap();
    let tree = dir.join("tree");
    fs::create_dir_all(&tree).unwrap();
    let body = "void f(void) {\n    old_api(1);\n    alpha(2);\n}\n";
    fs::write(tree.join("a.c"), body).unwrap();

    let out = spatch()
        .arg("scan")
        .arg("--rules")
        .arg(&rules)
        .args(["--format", "json"])
        .arg(&tree)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    // The transform rule reports would-change; the file is untouched.
    assert_eq!(fs::read_to_string(tree.join("a.c")).unwrap(), body);
    let report =
        cocci_core::ApplyReport::from_json(&String::from_utf8(out.stdout).unwrap()).unwrap();
    let file = &report.files[0];
    let rename = file
        .rules
        .iter()
        .find(|r| r.id == "rename-old")
        .expect("per-rule outcome recorded");
    assert_eq!(rename.status, cocci_core::FileStatus::Changed);
    assert_eq!(rename.matches, 1);
    let beta = file.rules.iter().find(|r| r.id == "use-beta").unwrap();
    assert_eq!(beta.findings, 1);
}

#[test]
fn scan_resume_checks_ruleset_hash_and_skips_unchanged() {
    let dir = tmpdir("scan-resume");
    let rules = write_rules_dir(&dir);
    let tree = write_scan_tree(&dir);
    let report = dir.join("scan.json");

    let first = spatch()
        .arg("scan")
        .arg("--rules")
        .arg(&rules)
        .arg("--report")
        .arg(&report)
        .arg(&tree)
        .output()
        .unwrap();
    assert!(first.status.success(), "{first:?}");

    // Resuming with a different rule set is refused up front.
    let other = dir.join("other-rules");
    fs::create_dir_all(&other).unwrap();
    fs::write(
        other.join("solo.cocci"),
        "@r@\nexpression e;\nposition p;\n@@\nalpha(e)@p;\n",
    )
    .unwrap();
    let out = spatch()
        .arg("scan")
        .arg("--rules")
        .arg(&other)
        .arg("--resume")
        .arg(&report)
        .arg(&tree)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("not produced by this rule set"), "{stderr}");

    // Same rule set: every unchanged file is skipped, findings carried.
    let out = spatch()
        .arg("scan")
        .arg("--rules")
        .arg(&rules)
        .arg("--resume")
        .arg(&report)
        .arg(&tree)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("resumed: 3 unchanged file(s) skipped"),
        "{stderr}"
    );
    let findings = text_finding_set(&String::from_utf8(out.stdout).unwrap());
    assert_eq!(findings.len(), 3, "carried findings");
}

#[test]
fn scan_no_flow_refusal_names_the_rule() {
    let dir = tmpdir("scan-noflow");
    let rules = dir.join("rules");
    fs::create_dir_all(&rules).unwrap();
    fs::write(
        rules.join("pair.cocci"),
        "// spatch-rule: pair-exists\n@pair@\nexpression b;\nposition p;\n@@\n\
         probe_begin(b)@p;\n... when exists\nprobe_end(b);\n",
    )
    .unwrap();
    let tree = dir.join("tree");
    fs::create_dir_all(&tree).unwrap();
    fs::write(
        tree.join("a.c"),
        "void f(void) { probe_begin(1); probe_end(1); }\n",
    )
    .unwrap();

    let out = spatch()
        .arg("scan")
        .arg("--rules")
        .arg(&rules)
        .arg("--no-flow")
        .arg(&tree)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("pair-exists"), "{stderr}");
    assert!(stderr.contains("when exists"), "{stderr}");
}

#[test]
fn scan_sarif_lists_every_rule_with_severity_levels() {
    use cocci_core::report::json;

    let dir = tmpdir("scan-sarif");
    let rules = write_rules_dir(&dir);
    let tree = write_scan_tree(&dir);

    let out = spatch()
        .arg("scan")
        .arg("--rules")
        .arg(&rules)
        .args(["--format", "sarif", "--quiet"])
        .arg(&tree)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let sarif = json::parse(&String::from_utf8(out.stdout).unwrap()).unwrap();
    let top = sarif.as_object().unwrap();
    assert_eq!(
        top.get("version").unwrap().as_str().unwrap(),
        "2.1.0",
        "required SARIF key"
    );
    assert!(top.contains_key("$schema"), "required SARIF key");
    let run = top.get("runs").unwrap().as_array().unwrap()[0]
        .as_object()
        .unwrap();
    let driver = run
        .get("tool")
        .unwrap()
        .as_object()
        .unwrap()
        .get("driver")
        .unwrap()
        .as_object()
        .unwrap();
    let listed: Vec<(String, String)> = driver
        .get("rules")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|r| {
            let o = r.as_object().unwrap();
            let level = o
                .get("defaultConfiguration")
                .unwrap()
                .as_object()
                .unwrap()
                .get("level")
                .unwrap()
                .as_str()
                .unwrap();
            (
                o.get("id").unwrap().as_str().unwrap().to_string(),
                level.to_string(),
            )
        })
        .collect();
    assert_eq!(
        listed,
        vec![
            ("no-gamma".to_string(), "note".to_string()),
            ("use-beta".to_string(), "warning".to_string()),
        ],
        "all loaded rules listed, sorted, with metadata severities"
    );
    // Every result carries a listed ruleId and its rule's level.
    for r in run.get("results").unwrap().as_array().unwrap() {
        let o = r.as_object().unwrap();
        let id = o.get("ruleId").unwrap().as_str().unwrap();
        assert!(listed.iter().any(|(lid, _)| lid == id), "{id}");
        assert!(o.contains_key("level"));
    }
}

#[test]
fn scan_output_is_byte_identical_across_runs_and_ignore_duplicates() {
    let dir = tmpdir("scan-determinism");
    let rules = write_rules_dir(&dir);
    let tree = write_scan_tree(&dir);

    let run = |fmt: &str| -> Vec<u8> {
        let out = spatch()
            .arg("scan")
            .arg("--rules")
            .arg(&rules)
            .args(["--format", fmt, "--quiet", "-j", "4"])
            // The same --ignore pattern twice: deduplicated, not an error.
            .args(["--ignore", "*.tmp", "--ignore", "*.tmp"])
            .arg(&tree)
            .output()
            .unwrap();
        assert!(out.status.success(), "{fmt}: {out:?}");
        out.stdout
    };
    for fmt in ["text", "sarif"] {
        assert_eq!(run(fmt), run(fmt), "{fmt} output drifted between runs");
    }
}

// ---------------------------------------------------------------------------
// Telemetry: --trace-out Chrome profiles and the --stats table.

/// Rules + corpus exercising every trace phase in one scan: a
/// report-only tree rule (tree_match) and a flow transform rule
/// (statement dots: cfg_build, flow_match, rewrite, render) over a
/// walked directory (walk, prefilter, parse, report).
fn write_telemetry_fixture(dir: &std::path::Path) -> (PathBuf, PathBuf) {
    let rules = dir.join("rules");
    fs::create_dir_all(&rules).unwrap();
    fs::write(
        rules.join("use_beta.cocci"),
        "// spatch-rule: use-beta\n@r@\nexpression e;\nposition p;\n@@\nalpha(e)@p;\n",
    )
    .unwrap();
    fs::write(
        rules.join("pair.cocci"),
        "// spatch-rule: probe-pair\n@pair@\nexpression b;\n@@\n\
         - probe_begin(b);\n+ probe_enter(b);\n...\nprobe_end(b);\n",
    )
    .unwrap();
    let corpus = dir.join("corpus");
    fs::create_dir_all(&corpus).unwrap();
    fs::write(corpus.join("a.c"), "void f(void) {\n    alpha(1);\n}\n").unwrap();
    fs::write(
        corpus.join("pair.c"),
        "void g(int x) {\n    probe_begin(x);\n    work(x);\n    probe_end(x);\n}\n",
    )
    .unwrap();
    // No atom of any rule: exercises the pruned path.
    fs::write(corpus.join("none.c"), "void h(void) {\n    other(2);\n}\n").unwrap();
    (rules, corpus)
}

#[test]
fn trace_out_writes_chrome_json_naming_every_phase() {
    let dir = tmpdir("traceout");
    let (rules, corpus) = write_telemetry_fixture(&dir);
    let trace = dir.join("trace.json");
    let out = spatch()
        .arg("scan")
        .arg("--rules")
        .arg(&rules)
        .arg("--trace-out")
        .arg(&trace)
        .arg("--quiet")
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    let text = fs::read_to_string(&trace).unwrap();
    let v = cocci_core::report::json::parse(&text).expect("trace JSON is well-formed");
    let events = v.as_object().unwrap()["traceEvents"].as_array().unwrap();
    let complete: Vec<_> = events
        .iter()
        .filter_map(|e| e.as_object())
        .filter(|o| o.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .collect();
    assert!(!complete.is_empty());
    // Every complete event carries the Chrome trace-event essentials.
    for o in &complete {
        for key in ["pid", "tid", "ts", "dur", "name"] {
            assert!(o.contains_key(key), "event missing {key}");
        }
    }
    for phase in cocci_trace::Phase::ALL {
        assert!(
            complete
                .iter()
                .any(|o| o.get("name").and_then(|n| n.as_str()) == Some(phase.name())),
            "trace has no {} span",
            phase.name()
        );
    }
}

#[test]
fn stats_count_totals_are_stable_across_thread_counts() {
    let dir = tmpdir("statsdet");
    let (rules, corpus) = write_telemetry_fixture(&dir);
    // Count-like stats lines (span counts, counters, per-rule match and
    // finding totals) must not depend on the worker count; wall-clock
    // columns and the pool line may, and are stripped. Sorted because
    // the rules table orders by per-run timing.
    let run = |jobs: &str| -> Vec<String> {
        let out = spatch()
            .arg("scan")
            .arg("--rules")
            .arg(&rules)
            .args(["--stats", "-j", jobs, "--quiet"])
            .arg(&corpus)
            .output()
            .unwrap();
        assert!(out.status.success(), "{out:?}");
        let err = String::from_utf8(out.stderr).unwrap();
        let mut lines: Vec<String> = err
            .lines()
            .filter_map(|l| {
                let l = l.trim_start();
                if l.starts_with("phase ") || l.starts_with("rule ") {
                    l.split(" ms=").next().map(str::to_string)
                } else if l.starts_with("counter ") {
                    Some(l.to_string())
                } else {
                    None
                }
            })
            .collect();
        lines.sort();
        lines
    };
    let base = run("1");
    assert!(base.iter().any(|l| l == "phase parse: spans=2"), "{base:?}");
    assert_eq!(run("2"), base, "-j 2 drifted");
    assert_eq!(run("4"), base, "-j 4 drifted");
}

// ---------------------------------------------------------------------------
// `spatch lint` and the load-time rule lint in scan/apply.

/// SPL03 deny: the `=~` regex requires a `-`, which no identifier has.
/// Compiles fine, so `--no-lint` bypass runs still succeed (matching
/// nothing).
const UNSATISFIABLE_PATCH: &str = "@r@\nidentifier f =~ \"foo-bar\";\n@@\n- f();\n";

/// SPL01 warn only: `dead` is declared and never referenced.
const UNUSED_MV_PATCH: &str =
    "@r@\nexpression e;\nidentifier dead;\n@@\n- old_api(e);\n+ new_api(e);\n";

#[test]
fn lint_clean_patch_exits_zero() {
    let dir = tmpdir("lint-clean");
    let patch = dir.join("p.cocci");
    fs::write(&patch, RENAME_PATCH).unwrap();
    let out = spatch().arg("lint").arg(&patch).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(out.stdout.is_empty(), "{out:?}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("0 deny, 0 warn"), "{err}");
}

#[test]
fn lint_deny_finding_exits_one() {
    let dir = tmpdir("lint-deny");
    let patch = dir.join("p.cocci");
    fs::write(&patch, UNSATISFIABLE_PATCH).unwrap();
    let out = spatch().arg("lint").arg(&patch).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    // Grep-style text: `path:line:col: SPL03: message`.
    assert!(stdout.contains("p.cocci:1:1: SPL03:"), "{stdout}");
    assert!(stdout.contains("can never match"), "{stdout}");
}

#[test]
fn lint_warnings_alone_exit_zero() {
    let dir = tmpdir("lint-warn");
    let patch = dir.join("p.cocci");
    fs::write(&patch, UNUSED_MV_PATCH).unwrap();
    let out = spatch().arg("lint").arg(&patch).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("SPL01"), "{stdout}");
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("0 deny, 1 warn"));
}

#[test]
fn lint_level_overrides_change_exit_codes() {
    let dir = tmpdir("lint-levels");
    let patch = dir.join("p.cocci");
    fs::write(&patch, UNSATISFIABLE_PATCH).unwrap();
    // --allow SPL03 drops the diagnostic entirely.
    let out = spatch()
        .args(["lint", "--allow", "SPL03"])
        .arg(&patch)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(out.stdout.is_empty(), "{out:?}");
    // --warn SPL03 keeps it visible but passing.
    let out = spatch()
        .args(["lint", "--warn", "SPL03"])
        .arg(&patch)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8(out.stdout).unwrap().contains("SPL03"));
    // --deny on a warn-class lint fails the run.
    let unused = dir.join("u.cocci");
    fs::write(&unused, UNUSED_MV_PATCH).unwrap();
    let out = spatch()
        .args(["lint", "--deny", "unused-metavar"])
        .arg(&unused)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    // Unknown lint id is a usage error.
    let out = spatch()
        .args(["lint", "--deny", "SPL99"])
        .arg(&unused)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown lint"));
}

#[test]
fn lint_json_format_embeds_lints_block() {
    let dir = tmpdir("lint-json");
    let patch = dir.join("p.cocci");
    fs::write(&patch, UNSATISFIABLE_PATCH).unwrap();
    let out = spatch()
        .args(["lint", "--format", "json", "--quiet"])
        .arg(&patch)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"lints\": ["), "{stdout}");
    assert!(stdout.contains("\"rule\": \"SPL03\""), "{stdout}");
    // A lint run never walks the corpus: no per-file entries.
    assert!(stdout.contains("\"files\": ["), "{stdout}");
    assert!(!stdout.contains("\"findings\""), "{stdout}");
}

#[test]
fn lint_sarif_format_has_required_keys() {
    let dir = tmpdir("lint-sarif");
    let patch = dir.join("p.cocci");
    fs::write(&patch, UNSATISFIABLE_PATCH).unwrap();
    let out = spatch()
        .args(["lint", "--format", "sarif", "--quiet"])
        .arg(&patch)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"version\": \"2.1.0\""), "{stdout}");
    assert!(stdout.contains("\"results\""), "{stdout}");
    assert!(stdout.contains("\"ruleId\": \"SPL03\""), "{stdout}");
    // The tool section lists the lint classes with their levels.
    assert!(stdout.contains("\"id\": \"SPL03\""), "{stdout}");
    assert!(stdout.contains("\"level\": \"error\""), "{stdout}");
}

#[test]
fn lint_directory_flags_duplicate_rules() {
    let dir = tmpdir("lint-dir");
    let rules = dir.join("rules");
    fs::create_dir_all(&rules).unwrap();
    fs::write(rules.join("first.cocci"), RENAME_PATCH).unwrap();
    // Same pattern, different indentation — still the same normalized rule.
    fs::write(
        rules.join("second.cocci"),
        "@@\nexpression e;\n@@\n-   old_api(e);\n+   new_api(e);\n",
    )
    .unwrap();
    let out = spatch().arg("lint").arg(&rules).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("SPL08"), "{stdout}");
    assert!(stdout.contains("duplicates rule `first`"), "{stdout}");
    // Promoted to deny, the duplicate fails the lint run.
    let out = spatch()
        .args(["lint", "--deny", "SPL08"])
        .arg(&rules)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn lint_load_errors_exit_two() {
    let dir = tmpdir("lint-load-err");
    // Unparseable rule file.
    let broken = dir.join("broken.cocci");
    fs::write(&broken, "@@\nnot a decl\n").unwrap();
    let out = spatch().arg("lint").arg(&broken).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Bad `spatch-severity:` header names the offending file.
    let sev = dir.join("sev.cocci");
    fs::write(
        &sev,
        "// spatch-severity: critical\n@@\nexpression e;\n@@\n- old_api(e);\n+ new_api(e);\n",
    )
    .unwrap();
    let out = spatch().arg("lint").arg(&sev).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("sev.cocci"), "{err}");
    assert!(err.contains("bad spatch-severity `critical`"), "{err}");
}

#[test]
fn scan_refuses_deny_lints_before_walk_unless_no_lint() {
    let dir = tmpdir("scan-lint-refuse");
    let rules = dir.join("rules");
    let corpus = dir.join("src");
    fs::create_dir_all(&rules).unwrap();
    fs::create_dir_all(&corpus).unwrap();
    fs::write(rules.join("bad.cocci"), UNSATISFIABLE_PATCH).unwrap();
    fs::write(corpus.join("a.c"), "void f(void) { g(); }\n").unwrap();

    let out = spatch()
        .arg("scan")
        .arg("--rules")
        .arg(&rules)
        .arg(&corpus)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("SPL03"), "{err}");
    assert!(err.contains("--no-lint"), "{err}");

    // The escape hatch: same rules, lint skipped, scan completes.
    let out = spatch()
        .arg("scan")
        .arg("--rules")
        .arg(&rules)
        .arg("--no-lint")
        .arg(&corpus)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn apply_refuses_deny_lints_and_reports_warn_lints() {
    let dir = tmpdir("apply-lint");
    let bad = dir.join("bad.cocci");
    let file = dir.join("t.c");
    fs::write(&bad, UNSATISFIABLE_PATCH).unwrap();
    fs::write(&file, "void f(void) { old_api(1); }\n").unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&bad)
        .arg(&file)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("SPL03"), "{err}");
    assert!(err.contains("--no-lint"), "{err}");

    let out = spatch()
        .args(["--sp-file"])
        .arg(&bad)
        .arg("--no-lint")
        .arg(&file)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // Warn-level lints do not block the run and land in the JSON
    // report's `lints` block.
    let warn = dir.join("warn.cocci");
    let report = dir.join("report.json");
    fs::write(&warn, UNUSED_MV_PATCH).unwrap();
    let out = spatch()
        .args(["--sp-file"])
        .arg(&warn)
        .args(["--report"])
        .arg(&report)
        .arg(&file)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8(out.stderr).unwrap().contains("SPL01"));
    let json = fs::read_to_string(&report).unwrap();
    assert!(json.contains("\"lints\": ["), "{json}");
    assert!(json.contains("\"rule\": \"SPL01\""), "{json}");
    // The rewrite itself still happened (diff on stdout).
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("new_api(1)"));
}

// ---------------------------------------------------------------------------
// The explain engine: --explain annotations, kill stages, and the funnel.

/// Parse `spatch: explain: <path>: <rule> [<stage>]...` stderr lines
/// into a sorted `(file-basename, rule, stage)` set.
fn explain_lines(stderr: &str) -> Vec<(String, String, String)> {
    let mut out: Vec<(String, String, String)> = stderr
        .lines()
        .filter_map(|l| l.strip_prefix("spatch: explain: "))
        .map(|l| {
            let (path, rest) = l.split_once(": ").unwrap();
            let (rule, rest) = rest.split_once(" [").unwrap();
            let stage = rest.split(']').next().unwrap();
            (
                path.rsplit('/').next().unwrap().to_string(),
                rule.to_string(),
                stage.to_string(),
            )
        })
        .collect();
    out.sort();
    out
}

/// Parse the `funnel:` rows out of `--stats` stderr.
fn stats_funnel(stderr: &str) -> Vec<(String, u64)> {
    stderr
        .lines()
        .skip_while(|l| l.trim() != "funnel:")
        .skip(1)
        .take_while(|l| l.starts_with("    ") && !l.trim_start().starts_with("rule "))
        .map(|l| {
            let (k, v) = l.trim().split_once(": ").unwrap();
            (k.to_string(), v.parse().unwrap())
        })
        .collect()
}

#[test]
fn explain_apply_stages_agree_with_report_across_jobs() {
    use cocci_core::explain::KillStage;
    use cocci_core::ApplyReport;

    let dir = tmpdir("explain-apply");
    let patch = dir.join("p.cocci");
    fs::write(&patch, RENAME_PATCH).unwrap();
    let tree = dir.join("tree");
    fs::create_dir_all(&tree).unwrap();
    fs::write(tree.join("hit.c"), "void f(void) {\n    old_api(1);\n}\n").unwrap();
    // The atom appears (so the file parses) but nothing anchors.
    fs::write(
        tree.join("anchor.c"),
        "void a(void) {\n    int old_api = 3;\n}\n",
    )
    .unwrap();
    fs::write(tree.join("none.c"), "void h(void) {\n    keep(2);\n}\n").unwrap();

    let run = |jobs: &str, report: &std::path::Path| -> Vec<(String, String, String)> {
        let out = spatch()
            .args(["--sp-file"])
            .arg(&patch)
            .args(["--explain", "-j", jobs, "--report"])
            .arg(report)
            .arg(&tree)
            .output()
            .unwrap();
        assert!(out.status.success(), "{out:?}");
        explain_lines(&String::from_utf8(out.stderr).unwrap())
    };

    let r1 = dir.join("r1.json");
    let r4 = dir.join("r4.json");
    let lines = run("1", &r1);
    assert_eq!(run("4", &r4), lines, "-j 4 drifted from -j 1");

    let by_file = |file: &str| -> &str {
        &lines
            .iter()
            .find(|(f, _, _)| f == file)
            .unwrap_or_else(|| panic!("no explain line for {file}: {lines:?}"))
            .2
    };
    assert_eq!(by_file("hit.c"), "completed");
    assert_eq!(by_file("anchor.c"), "anchor");
    assert_eq!(by_file("none.c"), "prefilter");

    // The report tells the same story on every surface: per-file
    // kill_stage rows and the embedded explain block.
    for path in [&r1, &r4] {
        let report = ApplyReport::from_json(&fs::read_to_string(path).unwrap()).unwrap();
        for (file, stage) in [
            ("hit.c", KillStage::Completed),
            ("anchor.c", KillStage::Anchor),
            ("none.c", KillStage::Prefilter),
        ] {
            let f = report
                .files
                .iter()
                .find(|f| f.name.ends_with(file))
                .unwrap();
            assert_eq!(f.kill_stage, Some(stage), "{file}");
        }
        let block = report.explain.as_ref().expect("--explain embeds the block");
        assert_eq!(block.dropped, 0);
        let mut from_block: Vec<(String, String, String)> = block
            .attempts
            .iter()
            .map(|a| {
                (
                    a.file.rsplit('/').next().unwrap().to_string(),
                    a.rule.clone(),
                    a.stage.name().to_string(),
                )
            })
            .collect();
        from_block.sort();
        assert_eq!(from_block, lines, "explain block vs stderr annotations");
    }
}

#[test]
fn explain_scan_funnel_reconciles_exactly_with_report() {
    use cocci_core::explain::KillStage;
    use cocci_core::ApplyReport;

    let dir = tmpdir("explain-scan");
    let rules = write_rules_dir(&dir);
    let tree = write_scan_tree(&dir);
    let report_path = dir.join("scan.json");

    let out = spatch()
        .arg("scan")
        .arg("--rules")
        .arg(&rules)
        .args(["--explain", "--stats", "-j", "4", "--report"])
        .arg(&report_path)
        .arg(&tree)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    let report = ApplyReport::from_json(&fs::read_to_string(&report_path).unwrap()).unwrap();
    let block = report.explain.as_ref().expect("explain block present");
    assert_eq!(block.dropped, 0);

    // Fixture shape: a.c runs both rules to completion, b.c completes
    // use-beta and prunes no-gamma, c.c prunes both.
    let stage_count = |stage: KillStage| block.attempts.iter().filter(|a| a.stage == stage).count();
    assert_eq!(block.attempts.len(), 6, "{block:?}");
    assert_eq!(stage_count(KillStage::Completed), 3);
    assert_eq!(stage_count(KillStage::Prefilter), 3);

    // The --stats funnel must equal the one derived from the report's
    // own attempts — exactly, no tolerance.
    let funnel = stats_funnel(&stderr);
    let killed_through = |through: KillStage| {
        block
            .attempts
            .iter()
            .filter(|a| a.stage <= through && a.stage != KillStage::Completed)
            .count() as u64
    };
    let attempts = block.attempts.len() as u64;
    let expected: Vec<(String, u64)> = [
        ("attempts", attempts),
        (
            "survived_prefilter",
            attempts - killed_through(KillStage::Prefilter),
        ),
        ("parsed", attempts - killed_through(KillStage::Parse)),
        ("anchored", attempts - killed_through(KillStage::Anchor)),
        ("gaps_clean", attempts - killed_through(KillStage::GapWalk)),
        (
            "bindings_consistent",
            attempts - killed_through(KillStage::Bindings),
        ),
        ("completed", attempts - killed_through(KillStage::Timeout)),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect();
    assert_eq!(funnel, expected, "--stats funnel vs report explain block");

    // Per-rule kill_stage rows agree with the block's attribution.
    for f in &report.files {
        for r in &f.rules {
            let a = block
                .attempts
                .iter()
                .find(|a| a.file == f.name && a.rule == r.id && a.stage != KillStage::Prefilter)
                .unwrap_or_else(|| panic!("{}: no attempt for {}", f.name, r.id));
            assert_eq!(r.kill_stage, Some(a.stage), "{}: {}", f.name, r.id);
        }
    }
}

#[test]
fn explain_resume_carries_kill_stages_without_new_attempts() {
    use cocci_core::ApplyReport;

    let dir = tmpdir("explain-resume");
    let rules = write_rules_dir(&dir);
    let tree = write_scan_tree(&dir);
    let r1 = dir.join("r1.json");
    let r2 = dir.join("r2.json");

    let out = spatch()
        .arg("scan")
        .arg("--rules")
        .arg(&rules)
        .args(["--explain", "--quiet", "-j", "1", "--report"])
        .arg(&r1)
        .arg(&tree)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    // Nothing changed: every file resumes; kill stages are copied from
    // the previous report, and no fresh attempt is recorded.
    let out = spatch()
        .arg("scan")
        .arg("--rules")
        .arg(&rules)
        .args(["--explain", "--stats", "--quiet", "-j", "4", "--resume"])
        .arg(&r1)
        .args(["--report"])
        .arg(&r2)
        .arg(&tree)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();

    let first = ApplyReport::from_json(&fs::read_to_string(&r1).unwrap()).unwrap();
    let second = ApplyReport::from_json(&fs::read_to_string(&r2).unwrap()).unwrap();
    assert_eq!(second.resumed, 3);
    for f in &first.files {
        let carried = second.files.iter().find(|s| s.name == f.name).unwrap();
        assert!(f.kill_stage.is_some(), "{}", f.name);
        assert_eq!(carried.kill_stage, f.kill_stage, "{}", f.name);
    }
    let funnel = stats_funnel(&stderr);
    assert_eq!(
        funnel.first().map(|(k, v)| (k.as_str(), *v)),
        Some(("attempts", 0)),
        "resumed files bump no funnel counters: {funnel:?}"
    );
    assert_eq!(
        second.explain.as_ref().map(|b| b.attempts.len()),
        Some(0),
        "no fresh attempt traced"
    );
}

#[test]
fn explain_filter_narrows_annotations_to_file_and_rule() {
    let dir = tmpdir("explain-filter");
    let rules = write_rules_dir(&dir);
    let tree = write_scan_tree(&dir);

    let out = spatch()
        .arg("scan")
        .arg("--rules")
        .arg(&rules)
        .arg("--explain=b.c:use-beta")
        .arg(&tree)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let lines = explain_lines(&String::from_utf8(out.stderr).unwrap());
    assert_eq!(
        lines,
        vec![(
            "b.c".to_string(),
            "use-beta".to_string(),
            "completed".to_string()
        )],
        "only the filtered (file, rule) attempt is annotated"
    );
}
