//! End-to-end tests of the `spatch` binary: diff output, in-place
//! rewriting, thread flag, and error reporting.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn spatch() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spatch"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spatch-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

const RENAME_PATCH: &str = "@@\nexpression e;\n@@\n- old_api(e);\n+ new_api(e);\n";

#[test]
fn prints_unified_diff_by_default() {
    let dir = tmpdir("diff");
    let patch = dir.join("p.cocci");
    let file = dir.join("t.c");
    fs::write(&patch, RENAME_PATCH).unwrap();
    fs::write(&file, "void f(void) {\n    old_api(1);\n}\n").unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("-    old_api(1);"), "{stdout}");
    assert!(stdout.contains("+    new_api(1);"), "{stdout}");
    // The file itself is untouched.
    assert!(fs::read_to_string(&file).unwrap().contains("old_api"));
}

#[test]
fn in_place_rewrites_files() {
    let dir = tmpdir("inplace");
    let patch = dir.join("p.cocci");
    fs::write(&patch, RENAME_PATCH).unwrap();
    let mut files = Vec::new();
    for i in 0..4 {
        let f = dir.join(format!("t{i}.c"));
        fs::write(&f, format!("void f{i}(void) {{ old_api({i}); }}\n")).unwrap();
        files.push(f);
    }

    let mut cmd = spatch();
    cmd.args(["--sp-file"])
        .arg(&patch)
        .args(["--in-place", "-j", "2", "--quiet"]);
    for f in &files {
        cmd.arg(f);
    }
    let out = cmd.output().unwrap();
    assert!(out.status.success(), "{out:?}");
    for (i, f) in files.iter().enumerate() {
        let text = fs::read_to_string(f).unwrap();
        assert!(text.contains(&format!("new_api({i});")), "{text}");
    }
}

#[test]
fn reports_parse_errors_and_fails() {
    let dir = tmpdir("err");
    let patch = dir.join("p.cocci");
    let file = dir.join("broken.c");
    fs::write(&patch, RENAME_PATCH).unwrap();
    fs::write(&file, "void f( {\n").unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .arg(&file)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("broken.c"), "{stderr}");
}

#[test]
fn bad_patch_is_reported() {
    let dir = tmpdir("badpatch");
    let patch = dir.join("p.cocci");
    let file = dir.join("t.c");
    fs::write(&patch, "this is not SMPL").unwrap();
    fs::write(&file, "int x;\n").unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .arg(&file)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("semantic patch error"), "{stderr}");
}

#[test]
fn output_flag_writes_patched_file_elsewhere() {
    let dir = tmpdir("oflag");
    let patch = dir.join("p.cocci");
    let file = dir.join("t.c");
    let out_file = dir.join("patched.c");
    fs::write(&patch, RENAME_PATCH).unwrap();
    fs::write(&file, "void f(void) {\n    old_api(7);\n}\n").unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .args(["-o"])
        .arg(&out_file)
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    // Original untouched, -o target holds the rewrite.
    assert!(fs::read_to_string(&file).unwrap().contains("old_api(7);"));
    let patched = fs::read_to_string(&out_file).unwrap();
    assert!(patched.contains("new_api(7);"), "{patched}");
    assert!(!patched.contains("old_api"), "{patched}");
}

#[test]
fn usage_errors_exit_code_2() {
    // No arguments at all.
    let out = spatch().output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage:"), "{stderr}");

    // --sp-file without any target files.
    let dir = tmpdir("nofiles");
    let patch = dir.join("p.cocci");
    fs::write(&patch, RENAME_PATCH).unwrap();
    let out = spatch().args(["--sp-file"]).arg(&patch).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // Unknown option.
    let out = spatch().args(["--frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // Unreadable patch file.
    let out = spatch()
        .args(["--sp-file"])
        .arg(dir.join("missing.cocci"))
        .arg(dir.join("also-missing.c"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn whole_directory_diff_then_in_place_roundtrip() {
    // The workflow the paper describes: review the diff across a tree,
    // then enact it. Exercises both modes over the same temp directory.
    let dir = tmpdir("tree");
    let patch = dir.join("p.cocci");
    fs::write(&patch, RENAME_PATCH).unwrap();
    let mut files = Vec::new();
    for i in 0..3 {
        let f = dir.join(format!("mod{i}.c"));
        fs::write(
            &f,
            format!("void stage{i}(void) {{\n    old_api({i});\n    keep({i});\n}}\n"),
        )
        .unwrap();
        files.push(f);
    }
    // One file that must not match (and must not be rewritten).
    let untouched = dir.join("other.c");
    fs::write(&untouched, "void other(void) { keep(9); }\n").unwrap();
    files.push(untouched.clone());

    // Pass 1: diff mode shows every change, touches nothing.
    let mut cmd = spatch();
    cmd.args(["--sp-file"]).arg(&patch);
    for f in &files {
        cmd.arg(f);
    }
    let out = cmd.output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    for i in 0..3 {
        assert!(stdout.contains(&format!("-    old_api({i});")), "{stdout}");
        assert!(stdout.contains(&format!("+    new_api({i});")), "{stdout}");
    }
    for f in &files {
        assert!(!fs::read_to_string(f).unwrap().contains("new_api"));
    }

    // Pass 2: --in-place enacts exactly the reviewed diff.
    let mut cmd = spatch();
    cmd.args(["--sp-file"])
        .arg(&patch)
        .args(["--in-place", "--quiet"]);
    for f in &files {
        cmd.arg(f);
    }
    let out = cmd.output().unwrap();
    assert!(out.status.success(), "{out:?}");
    for (i, f) in files.iter().take(3).enumerate() {
        let text = fs::read_to_string(f).unwrap();
        assert!(text.contains(&format!("new_api({i});")), "{text}");
        assert!(text.contains(&format!("keep({i});")), "{text}");
    }
    assert_eq!(
        fs::read_to_string(&untouched).unwrap(),
        "void other(void) { keep(9); }\n"
    );
}

#[test]
fn no_match_exits_zero() {
    let dir = tmpdir("nomatch");
    let patch = dir.join("p.cocci");
    let file = dir.join("t.c");
    fs::write(&patch, RENAME_PATCH).unwrap();
    fs::write(&file, "void f(void) { other(); }\n").unwrap();

    let out = spatch()
        .args(["--sp-file"])
        .arg(&patch)
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(out.stdout.is_empty());
}
