//! Minimal unified-diff rendering (line-based LCS).
//!
//! `spatch` traditionally prints its transformations as a unified diff;
//! this module provides that output without external dependencies. The
//! LCS is computed with the O(n·m) dynamic program, which is fine for
//! source files (the driver diffs one file at a time).

/// Produce a unified diff between `a` and `b` labelled with `name`.
/// Returns an empty string when the texts are identical.
pub fn unified_diff(name: &str, a: &str, b: &str, context: usize) -> String {
    if a == b {
        return String::new();
    }
    let al: Vec<&str> = a.lines().collect();
    let bl: Vec<&str> = b.lines().collect();
    let ops = diff_ops(&al, &bl);

    let mut out = String::new();
    out.push_str(&format!("--- a/{name}\n+++ b/{name}\n"));

    // Group ops into hunks with `context` lines of context.
    let mut i = 0usize;
    while i < ops.len() {
        if let Op::Equal(_, _) = ops[i] {
            i += 1;
            continue;
        }
        // Start of a change run; back up for leading context.
        let hunk_start = i;
        let mut hunk_end = i;
        let mut gap = 0usize;
        let mut j = i + 1;
        while j < ops.len() {
            match ops[j] {
                Op::Equal(_, _) => {
                    gap += 1;
                    if gap > 2 * context {
                        break;
                    }
                }
                _ => {
                    gap = 0;
                    hunk_end = j;
                }
            }
            j += 1;
        }

        // Collect hunk ops with surrounding context.
        let lead = hunk_start.saturating_sub(context);
        let tail = (hunk_end + context + 1).min(ops.len());
        let hunk = &ops[lead..tail];

        let (mut a_start, mut b_start) = (usize::MAX, usize::MAX);
        let (mut a_count, mut b_count) = (0usize, 0usize);
        for op in hunk {
            match *op {
                Op::Equal(ai, bi) => {
                    a_start = a_start.min(ai);
                    b_start = b_start.min(bi);
                    a_count += 1;
                    b_count += 1;
                }
                Op::Delete(ai) => {
                    a_start = a_start.min(ai);
                    a_count += 1;
                }
                Op::Insert(bi) => {
                    b_start = b_start.min(bi);
                    b_count += 1;
                }
            }
        }
        if a_start == usize::MAX {
            a_start = 0;
        }
        if b_start == usize::MAX {
            b_start = 0;
        }
        out.push_str(&format!(
            "@@ -{},{} +{},{} @@\n",
            a_start + 1,
            a_count,
            b_start + 1,
            b_count
        ));
        for op in hunk {
            match *op {
                Op::Equal(ai, _) => {
                    out.push(' ');
                    out.push_str(al[ai]);
                    out.push('\n');
                }
                Op::Delete(ai) => {
                    out.push('-');
                    out.push_str(al[ai]);
                    out.push('\n');
                }
                Op::Insert(bi) => {
                    out.push('+');
                    out.push_str(bl[bi]);
                    out.push('\n');
                }
            }
        }
        i = tail;
    }
    out
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Equal(usize, usize),
    Delete(usize),
    Insert(usize),
}

fn diff_ops(a: &[&str], b: &[&str]) -> Vec<Op> {
    let n = a.len();
    let m = b.len();
    // LCS table.
    let mut lcs = vec![0u32; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[idx(i, j)] = if a[i] == b[j] {
                lcs[idx(i + 1, j + 1)] + 1
            } else {
                lcs[idx(i + 1, j)].max(lcs[idx(i, j + 1)])
            };
        }
    }
    let mut ops = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        if a[i] == b[j] {
            ops.push(Op::Equal(i, j));
            i += 1;
            j += 1;
        } else if lcs[idx(i + 1, j)] >= lcs[idx(i, j + 1)] {
            ops.push(Op::Delete(i));
            i += 1;
        } else {
            ops.push(Op::Insert(j));
            j += 1;
        }
    }
    while i < n {
        ops.push(Op::Delete(i));
        i += 1;
    }
    while j < m {
        ops.push(Op::Insert(j));
        j += 1;
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_produce_nothing() {
        assert_eq!(unified_diff("f.c", "a\nb\n", "a\nb\n", 3), "");
    }

    #[test]
    fn single_line_change() {
        let d = unified_diff("f.c", "one\ntwo\nthree\n", "one\nTWO\nthree\n", 1);
        assert!(d.contains("--- a/f.c"));
        assert!(d.contains("-two"));
        assert!(d.contains("+TWO"));
        assert!(d.contains(" one"));
        assert!(d.contains(" three"));
    }

    #[test]
    fn insertion_only() {
        let d = unified_diff("f.c", "a\nc\n", "a\nb\nc\n", 0);
        assert!(d.contains("+b"));
        // No deletion lines (the `---` header does not count).
        assert!(!d
            .lines()
            .any(|l| l.starts_with('-') && !l.starts_with("---")));
    }

    #[test]
    fn deletion_only() {
        let d = unified_diff("f.c", "a\nb\nc\n", "a\nc\n", 0);
        assert!(d.contains("-b"));
    }

    #[test]
    fn distant_changes_get_separate_hunks() {
        let a: String = (0..40).map(|i| format!("line{i}\n")).collect();
        let b = a
            .replace("line3\n", "LINE3\n")
            .replace("line36\n", "LINE36\n");
        let d = unified_diff("f.c", &a, &b, 2);
        assert_eq!(d.matches("@@").count() / 2 * 2, d.matches("@@").count());
        assert!(d.matches("@@ -").count() >= 2, "{d}");
    }
}
