//! `spatch` — command-line front end for the semantic-patch engine,
//! mirroring Coccinelle's `spatch` usage:
//!
//! ```text
//! spatch --sp-file patch.cocci file1.c src/ ...
//!
//! Options:
//!   --sp-file <FILE>    semantic patch to apply (required)
//!   --mode <M>          `patch` (rewrite) or `report` (findings only);
//!                       auto-detected: a transformation-free patch (no
//!                       `-`/`+` lines) selects report mode
//!   --format <F>        report-mode output: `text` (grep-style
//!                       `file:line:col: rule: message`), `json` (the
//!                       apply report with embedded findings), or
//!                       `sarif` (SARIF 2.1.0 for CI ingestion)
//!   --in-place          rewrite files on disk instead of printing a diff
//!   -o <FILE>           write the single patched file here
//!   -j, --jobs <N>      worker threads (default: all cores)
//!   --report <FILE>     write a machine-readable JSON apply report
//!   --resume <FILE>     skip files whose content hash is unchanged
//!                       since this previous report (incremental re-apply)
//!   --timeout-ms <N>    per-file time budget; over-budget files are
//!                       recorded with a `timeout` status
//!   --ignore <PAT>      extra .gitignore-style exclusion (repeatable)
//!   --no-prefilter      disable the literal-atom pre-scan
//!   --no-flow           tree-sequence dots instead of CFG path matching
//!   --quiet             suppress per-file match reports
//! ```
//!
//! Targets may be files **or directories**: directories are walked
//! recursively (C/C++/CUDA extensions, honouring each root's
//! `.gitignore` plus `--ignore` patterns) and streamed through the
//! engine in bounded-memory batches — a GADGET-scale tree is one
//! command. Without `--in-place`/`-o`, a unified diff of every changed
//! file is printed to stdout — the traditional spatch workflow of
//! reviewing the change before enacting it.

mod diff;

use cocci_core::corpus::{apply_to_corpus_resumed, CorpusOptions, WalkSource};
use cocci_core::ApplyReport;
use cocci_smpl::parse_semantic_patch;
use std::path::PathBuf;
use std::process::ExitCode;

/// Run mode: rewrite matches or report them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Apply edits (the traditional spatch behaviour).
    Patch,
    /// Emit findings; never touch a file.
    Report,
}

/// Report-mode output format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// Grep-style `file:line:col: rule: message` lines.
    Text,
    /// The apply report JSON with embedded findings.
    Json,
    /// SARIF 2.1.0.
    Sarif,
}

struct Args {
    sp_file: PathBuf,
    targets: Vec<PathBuf>,
    in_place: bool,
    output: Option<PathBuf>,
    threads: usize,
    quiet: bool,
    report: Option<PathBuf>,
    resume: Option<PathBuf>,
    timeout_ms: Option<u64>,
    ignore: Vec<String>,
    no_prefilter: bool,
    no_flow: bool,
    mode: Option<Mode>,
    format: Option<Format>,
}

fn usage() -> ! {
    eprintln!(
        "usage: spatch --sp-file <patch.cocci> [--mode patch|report] [--format text|json|sarif] \
         [--in-place] [-o FILE] [-j N] [--report FILE] \
         [--resume FILE] [--timeout-ms N] [--ignore PAT]... [--no-prefilter] [--no-flow] \
         [--quiet] <files-or-dirs...>"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut sp_file = None;
    let mut targets = Vec::new();
    let mut in_place = false;
    let mut output = None;
    let mut threads = 0usize;
    let mut quiet = false;
    let mut report = None;
    let mut resume = None;
    let mut timeout_ms = None;
    let mut ignore = Vec::new();
    let mut no_prefilter = false;
    let mut no_flow = false;
    let mut mode = None;
    let mut format = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sp-file" => sp_file = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--mode" => {
                mode = Some(match it.next().as_deref() {
                    Some("patch") => Mode::Patch,
                    Some("report") => Mode::Report,
                    other => {
                        eprintln!("spatch: bad --mode {other:?} (expected patch|report)");
                        usage();
                    }
                })
            }
            "--format" => {
                format = Some(match it.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        eprintln!("spatch: bad --format {other:?} (expected text|json|sarif)");
                        usage();
                    }
                })
            }
            "--in-place" => in_place = true,
            "-o" => output = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "-j" | "--jobs" => {
                threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--report" => report = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--resume" => resume = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--timeout-ms" => {
                timeout_ms = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--ignore" => ignore.push(it.next().unwrap_or_else(|| usage())),
            "--no-prefilter" => no_prefilter = true,
            "--no-flow" => no_flow = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option: {other}");
                usage();
            }
            other => targets.push(PathBuf::from(other)),
        }
    }
    let Some(sp_file) = sp_file else { usage() };
    if targets.is_empty() {
        usage();
    }
    Args {
        sp_file,
        targets,
        in_place,
        output,
        threads,
        quiet,
        report,
        resume,
        timeout_ms,
        ignore,
        no_prefilter,
        no_flow,
        mode,
        format,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let patch_text = match std::fs::read_to_string(&args.sp_file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("spatch: cannot read {}: {e}", args.sp_file.display());
            return ExitCode::from(2);
        }
    };
    let patch = match parse_semantic_patch(&patch_text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("spatch: {}: {e}", args.sp_file.display());
            return ExitCode::from(2);
        }
    };
    let patch_hash = cocci_core::content_hash(&patch_text);

    // Report mode: explicit `--mode report`, or auto-detected from a
    // transformation-free patch (pure-context bodies can only ever
    // produce findings).
    let mode = args.mode.unwrap_or(if patch.is_report_only() {
        Mode::Report
    } else {
        Mode::Patch
    });
    if mode == Mode::Report && !patch.is_report_only() {
        // A transforming patch rewrites the in-memory text between
        // rules (sequential semantics), so findings of later rules
        // would carry line/col of an intermediate text no file on disk
        // ever has. Report mode therefore requires a
        // transformation-free patch, as upstream Coccinelle does.
        eprintln!(
            "spatch: report mode needs a transformation-free patch \
             (this one has `-`/`+` lines; drop them or run in patch mode)"
        );
        return ExitCode::from(2);
    }
    if mode == Mode::Report && (args.in_place || args.output.is_some()) {
        eprintln!(
            "spatch: report mode emits findings, never rewrites; \
             --in-place / -o make no sense with it"
        );
        return ExitCode::from(2);
    }
    if args.format.is_some() && mode != Mode::Report {
        eprintln!("spatch: --format only applies to report mode (--mode report)");
        return ExitCode::from(2);
    }

    // `-o` holds exactly one output file; a directory walk (or several
    // targets) could produce several changed files that would silently
    // overwrite each other in it.
    if args.output.is_some() && (args.targets.len() > 1 || args.targets[0].is_dir()) {
        eprintln!(
            "spatch: -o takes a single input file; use --in-place (or diff mode) for \
             directories and multi-file runs"
        );
        return ExitCode::from(2);
    }

    // Incremental re-apply: load the previous run's report up front so a
    // bad path fails before any work happens, and refuse a report made
    // by a *different* semantic patch — skipping "unchanged" files is
    // only sound against the same patch.
    let previous = match &args.resume {
        Some(path) => match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match ApplyReport::from_json(&text) {
                Ok(r) => {
                    if r.patch_hash != patch_hash {
                        // A report without a patch hash (older spatch)
                        // cannot vouch for any patch either — refuse
                        // rather than silently skip files the current
                        // patch has never seen.
                        eprintln!(
                            "spatch: {} was not produced by this semantic patch ({}); \
                             refusing to resume from it",
                            path.display(),
                            if r.patch.is_empty() {
                                "unknown patch"
                            } else {
                                &r.patch
                            }
                        );
                        return ExitCode::from(2);
                    }
                    Some(r)
                }
                Err(e) => {
                    eprintln!("spatch: cannot parse resume report {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("spatch: cannot read resume report {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let mut source = WalkSource::discover(&args.targets, &args.ignore);
    let opts = CorpusOptions {
        threads: args.threads,
        no_prefilter: args.no_prefilter,
        no_flow: args.no_flow,
        timeout_ms: args.timeout_ms,
        ..Default::default()
    };

    // The sink runs while each batch's text is still in memory: print the
    // diff / rewrite the file immediately, then let the text drop. Write
    // failures are collected so the report can be corrected afterwards
    // (the driver outcome says "changed", but the change never landed).
    let mut changed = 0usize;
    let mut write_errors: Vec<(String, String)> = Vec::new();
    let run = apply_to_corpus_resumed(
        &patch,
        &mut source,
        &opts,
        previous.as_ref(),
        |name, original, outcome| {
            if outcome.error.is_some() {
                return; // reported once from the report below
            }
            let Some(new_text) = &outcome.output else {
                if !args.quiet {
                    let what = if outcome.pruned {
                        "no match (pruned)"
                    } else if !outcome.findings.is_empty() {
                        "matched, findings recorded"
                    } else if outcome.matches > 0 {
                        "matched, no edits"
                    } else {
                        "no match"
                    };
                    eprintln!("spatch: {name}: {what}");
                }
                return;
            };
            if mode == Mode::Report {
                // A mixed patch's transform rules may still produce
                // edits in memory; report mode never surfaces them.
                return;
            }
            changed += 1;
            if args.in_place {
                if let Err(e) = std::fs::write(name, new_text) {
                    write_errors.push((name.to_string(), format!("cannot write: {e}")));
                    changed -= 1;
                } else if !args.quiet {
                    // Flow-routed rules report per-path witnesses too: a
                    // cross-branch binding that forked shows up once per
                    // rewritten path.
                    if outcome.witnesses > 0 {
                        eprintln!(
                            "spatch: {name}: rewritten ({} matches, {} witnesses)",
                            outcome.matches, outcome.witnesses
                        );
                    } else {
                        eprintln!("spatch: {name}: rewritten ({} matches)", outcome.matches);
                    }
                }
            } else if let Some(out) = &args.output {
                if let Err(e) = std::fs::write(out, new_text) {
                    write_errors.push((
                        name.to_string(),
                        format!("cannot write {}: {e}", out.display()),
                    ));
                    changed -= 1;
                }
            } else {
                print!("{}", diff::unified_diff(name, original, new_text, 3));
            }
        },
    );

    let mut report = match run {
        Ok(r) => r,
        Err(e) => {
            // Patch compile error: run-level, reported exactly once.
            eprintln!("spatch: {}: {e}", args.sp_file.display());
            return ExitCode::from(2);
        }
    };
    report.patch = args.sp_file.display().to_string();
    report.patch_hash = patch_hash;

    // A file whose rewrite failed to land is an error, not a change —
    // downgrade its report entry before anything consumes it.
    for (name, msg) in write_errors {
        if let Some(f) = report.files.iter_mut().find(|f| f.name == name) {
            f.status = cocci_core::FileStatus::Error;
            f.error = Some(msg);
        }
    }

    // Every failed file — parse/rewrite/write errors and unreadable paths
    // alike — is in the report exactly once; report them from there.
    // Timeouts are warnings, not failures: the whole point of the budget
    // is that one pathological file must not sink the corpus run.
    let mut failures = 0usize;
    for f in &report.files {
        match f.status {
            cocci_core::FileStatus::Error => {
                eprintln!(
                    "spatch: {}: {}",
                    f.name,
                    f.error.as_deref().unwrap_or("unknown error")
                );
                failures += 1;
            }
            cocci_core::FileStatus::Timeout => {
                eprintln!(
                    "spatch: {}: {}",
                    f.name,
                    f.error.as_deref().unwrap_or("timed out")
                );
            }
            _ => {}
        }
    }
    if report.resumed > 0 && !args.quiet {
        eprintln!(
            "spatch: resumed: {} unchanged file(s) skipped via {}",
            report.resumed,
            args.resume
                .as_deref()
                .map(|p| p.display().to_string())
                .unwrap_or_default()
        );
    }

    if let Some(path) = &args.report {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("spatch: cannot write report {}: {e}", path.display());
            failures += 1;
        } else if !args.quiet {
            eprintln!("spatch: report written to {}", path.display());
        }
    }

    // Report mode: the findings are the product. Text goes to stdout
    // grep-style; `json` emits the whole apply report (findings
    // embedded); `sarif` emits a SARIF 2.1.0 document for CI ingestion.
    // Resumed files kept their findings in the report, so every format
    // sees the full set even on incremental runs.
    let total_findings: usize = report.files.iter().map(|f| f.findings.len()).sum();
    if mode == Mode::Report {
        match args.format.unwrap_or(Format::Text) {
            Format::Text => {
                for f in &report.files {
                    for fd in &f.findings {
                        println!("{}", fd.text_line());
                    }
                }
            }
            Format::Json => print!("{}", report.to_json()),
            Format::Sarif => print!("{}", cocci_core::to_sarif(&report)),
        }
    }
    if !args.quiet {
        if mode == Mode::Report {
            eprintln!(
                "spatch: {total_findings} finding(s) across {} file(s), {failures} failure(s) ({})",
                report.files.len(),
                report.summary()
            );
        } else {
            eprintln!(
                "spatch: {changed}/{} file(s) transformed, {failures} failure(s) ({})",
                report.files.len(),
                report.summary()
            );
        }
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
