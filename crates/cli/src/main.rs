//! `spatch` — command-line front end for the semantic-patch engine,
//! mirroring Coccinelle's `spatch` usage:
//!
//! ```text
//! spatch --sp-file patch.cocci file1.c src/ ...
//!
//! Options:
//!   --sp-file <FILE>    semantic patch to apply (required)
//!   --mode <M>          `patch` (rewrite) or `report` (findings only);
//!                       auto-detected: a transformation-free patch (no
//!                       `-`/`+` lines) selects report mode
//!   --format <F>        report-mode output: `text` (grep-style
//!                       `file:line:col: rule: message`), `json` (the
//!                       apply report with embedded findings), or
//!                       `sarif` (SARIF 2.1.0 for CI ingestion)
//!   --in-place          rewrite files on disk instead of printing a diff
//!   -o <FILE>           write the single patched file here
//!   -j, --jobs <N>      worker threads (default: all cores)
//!   --report <FILE>     write a machine-readable JSON apply report
//!   --resume <FILE>     skip files whose content hash is unchanged
//!                       since this previous report (incremental re-apply)
//!   --timeout-ms <N>    per-file time budget; over-budget files are
//!                       recorded with a `timeout` status
//!   --ignore <PAT>      extra .gitignore-style exclusion (repeatable)
//!   --no-prefilter      disable the literal-atom pre-scan
//!   --no-flow           tree-sequence dots instead of CFG path matching
//!   --trace-out <FILE>  write a Chrome trace-event JSON profile of the
//!                       run (open in Perfetto / about:tracing)
//!   --stats             print per-phase/per-rule aggregates, the match
//!                       funnel, slowest files, and pool utilization to
//!                       stderr
//!   --explain[=GLOB[:RULE]]
//!                       trace per-attempt kill stages: annotate per-file
//!                       output and embed an `explain` block in the JSON
//!                       report, optionally filtered by file glob and
//!                       rule id
//!   --quiet             suppress per-file match reports
//! ```
//!
//! Targets may be files **or directories**: directories are walked
//! recursively (C/C++/CUDA extensions, honouring each root's
//! `.gitignore` plus `--ignore` patterns) and streamed through the
//! engine in bounded-memory batches — a GADGET-scale tree is one
//! command. Without `--in-place`/`-o`, a unified diff of every changed
//! file is printed to stdout — the traditional spatch workflow of
//! reviewing the change before enacting it.
//!
//! **Scan mode** (`spatch scan --rules <dir> <targets...>`) lints a
//! corpus with a whole directory of rules in one pass: every `*.cocci`
//! file is compiled once, each target file is parsed once however many
//! rules survive the merged prefilter, and findings merge into one
//! report (text/JSON/SARIF) attributed per rule id. Scan never writes
//! files. `--resume`, `-j`, `--ignore`, `--timeout-ms`,
//! `--no-prefilter`, `--no-flow`, `--report`, and `--format` behave as
//! in patch/report mode.
//!
//! **Lint mode** (`spatch lint <patch.cocci|rules-dir>`) statically
//! analyses the *rules themselves* (`cocci-lint`): unused or unbindable
//! metavariables, unsatisfiable `=~` constraints, bad `depends on`
//! edges, dead disjunction branches, prefilter-invisible rules,
//! unroutable quantified dots, duplicate rules. Diagnostics print as
//! text/JSON/SARIF; per-class levels move with `--deny/--warn/--allow
//! <ID>`. Exit 0 when clean (warnings allowed), 1 on deny-level
//! findings, 2 when the rules cannot be loaded at all. Scan and apply
//! run the same analysis at load time — warnings go to stderr and
//! deny-level findings refuse the run before the corpus walk
//! (`--no-lint` skips it); surviving diagnostics land in the JSON
//! report's `lints` block.

mod diff;
mod telemetry;

use cocci_core::corpus::{apply_to_corpus_resumed, CorpusOptions, WalkSource};
use cocci_core::scan::scan_corpus;
use cocci_core::{ApplyReport, CompiledRuleSet, ExplainConfig, RunMetrics, SarifRule};
use cocci_lint::{
    has_deny, lint_duplicates, lint_patch, lint_ruleset, Lint, LintConfig, LintLevel,
};
use cocci_smpl::{parse_semantic_patch, SemanticPatch};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

/// Run mode: rewrite matches or report them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Apply edits (the traditional spatch behaviour).
    Patch,
    /// Emit findings; never touch a file.
    Report,
}

/// Report-mode output format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// Grep-style `file:line:col: rule: message` lines.
    Text,
    /// The apply report JSON with embedded findings.
    Json,
    /// SARIF 2.1.0.
    Sarif,
}

struct Args {
    /// `spatch scan ...` — rule-collection scan mode.
    scan: bool,
    /// `spatch lint ...` — rule static-analysis mode.
    lint: bool,
    /// Skip the load-time rule lint in scan/apply.
    no_lint: bool,
    /// `--deny/--warn/--allow <ID>` overrides, in flag order.
    lint_overrides: Vec<(String, LintLevel)>,
    /// Scan mode's `--rules <dir>`.
    rules: Option<PathBuf>,
    sp_file: Option<PathBuf>,
    targets: Vec<PathBuf>,
    in_place: bool,
    output: Option<PathBuf>,
    threads: usize,
    quiet: bool,
    report: Option<PathBuf>,
    resume: Option<PathBuf>,
    timeout_ms: Option<u64>,
    ignore: Vec<String>,
    no_prefilter: bool,
    no_flow: bool,
    mode: Option<Mode>,
    format: Option<Format>,
    /// Chrome trace-event JSON destination (enables tracing).
    trace_out: Option<PathBuf>,
    /// Print the aggregate stats table (enables tracing).
    stats: bool,
    /// `--explain[=FILE_GLOB[:RULE_ID]]`: trace per-attempt kill stages
    /// (empty string = every attempt). Enables tracing.
    explain: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: spatch --sp-file <patch.cocci> [--mode patch|report] [--format text|json|sarif] \
         [--in-place] [-o FILE] [-j N] [--report FILE] \
         [--resume FILE] [--timeout-ms N] [--ignore PAT]... [--no-prefilter] [--no-flow] \
         [--trace-out FILE] [--stats] [--explain[=GLOB[:RULE]]] [--quiet] <files-or-dirs...>\n\
         \x20      spatch scan --rules <dir> [--format text|json|sarif] [-j N] [--report FILE] \
         [--resume FILE] [--timeout-ms N] [--ignore PAT]... [--no-prefilter] [--no-flow] \
         [--no-lint] [--deny ID]... [--warn ID]... [--allow ID]... \
         [--trace-out FILE] [--stats] [--explain[=GLOB[:RULE]]] [--quiet] <files-or-dirs...>\n\
         \x20      spatch lint [--format text|json|sarif] [--deny ID]... [--warn ID]... \
         [--allow ID]... [--stats] [--quiet] <patch.cocci|rules-dir>"
    );
    std::process::exit(2);
}

/// Build the lint enforcement config from `--deny/--warn/--allow` flags.
fn lint_config(args: &Args) -> Result<LintConfig, ExitCode> {
    let mut cfg = LintConfig::default();
    for (key, level) in &args.lint_overrides {
        if let Err(e) = cfg.set(key, *level) {
            eprintln!("spatch: {e}");
            return Err(ExitCode::from(2));
        }
    }
    Ok(cfg)
}

fn parse_args() -> Args {
    let mut scan = false;
    let mut lint = false;
    let mut no_lint = false;
    let mut lint_overrides = Vec::new();
    let mut rules = None;
    let mut sp_file = None;
    let mut targets = Vec::new();
    let mut in_place = false;
    let mut output = None;
    let mut threads = 0usize;
    let mut quiet = false;
    let mut report = None;
    let mut resume = None;
    let mut timeout_ms = None;
    let mut ignore: Vec<String> = Vec::new();
    let mut no_prefilter = false;
    let mut no_flow = false;
    let mut mode = None;
    let mut format = None;
    let mut trace_out = None;
    let mut stats = false;
    let mut explain = None;
    let mut it = std::env::args().skip(1).peekable();
    match it.peek().map(String::as_str) {
        Some("scan") => {
            scan = true;
            it.next();
        }
        Some("lint") => {
            lint = true;
            it.next();
        }
        _ => {}
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rules" if scan => rules = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--sp-file" if !scan && !lint => {
                sp_file = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            "--deny" => {
                lint_overrides.push((it.next().unwrap_or_else(|| usage()), LintLevel::Deny))
            }
            "--warn" => {
                lint_overrides.push((it.next().unwrap_or_else(|| usage()), LintLevel::Warn))
            }
            "--allow" => {
                lint_overrides.push((it.next().unwrap_or_else(|| usage()), LintLevel::Allow))
            }
            "--no-lint" if !lint => no_lint = true,
            "--mode" if !scan && !lint => {
                mode = Some(match it.next().as_deref() {
                    Some("patch") => Mode::Patch,
                    Some("report") => Mode::Report,
                    other => {
                        eprintln!("spatch: bad --mode {other:?} (expected patch|report)");
                        usage();
                    }
                })
            }
            "--format" => {
                format = Some(match it.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        eprintln!("spatch: bad --format {other:?} (expected text|json|sarif)");
                        usage();
                    }
                })
            }
            "--in-place" if !scan && !lint => in_place = true,
            "-o" if !scan && !lint => {
                output = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            "-j" | "--jobs" => {
                threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--report" => report = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--resume" => resume = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--timeout-ms" => {
                timeout_ms = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--ignore" => ignore.push(it.next().unwrap_or_else(|| usage())),
            "--no-prefilter" => no_prefilter = true,
            "--no-flow" => no_flow = true,
            "--trace-out" => trace_out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--stats" => stats = true,
            "--explain" if !lint => explain = Some(String::new()),
            other if other.starts_with("--explain=") && !lint => {
                explain = Some(other["--explain=".len()..].to_string())
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option: {other}");
                usage();
            }
            other => targets.push(PathBuf::from(other)),
        }
    }
    if scan {
        if rules.is_none() {
            eprintln!("spatch: scan mode requires --rules <dir>");
            usage();
        }
    } else if lint {
        if targets.len() != 1 {
            eprintln!("spatch: lint mode takes exactly one patch file or rules directory");
            usage();
        }
    } else if sp_file.is_none() {
        usage();
    }
    if targets.is_empty() {
        usage();
    }
    // `--ignore` repeated with the identical pattern used to stack the
    // duplicate into the walker's pattern list (and re-evaluate it per
    // path); exact duplicates collapse, first occurrence wins.
    let mut seen = std::collections::HashSet::new();
    ignore.retain(|p| seen.insert(p.clone()));
    Args {
        scan,
        lint,
        no_lint,
        lint_overrides,
        rules,
        sp_file,
        targets,
        in_place,
        output,
        threads,
        quiet,
        report,
        resume,
        timeout_ms,
        ignore,
        no_prefilter,
        no_flow,
        mode,
        format,
        trace_out,
        stats,
        explain,
    }
}

/// Load `--resume`'s previous report, refusing one produced by a
/// different patch / rule set (`expected_hash` mismatch): skipping
/// "unchanged" files is only sound against the very same rules.
fn load_resume(
    path: &std::path::Path,
    expected_hash: u64,
    what: &str,
) -> Result<ApplyReport, ExitCode> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("spatch: cannot read resume report {}: {e}", path.display());
            return Err(ExitCode::from(2));
        }
    };
    let r = match ApplyReport::from_json(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("spatch: cannot parse resume report {}: {e}", path.display());
            return Err(ExitCode::from(2));
        }
    };
    if r.patch_hash != expected_hash {
        // A report without a hash (older spatch) cannot vouch for any
        // rules either — refuse rather than silently skip files the
        // current rules have never seen.
        eprintln!(
            "spatch: {} was not produced by this {what} ({}); refusing to resume from it",
            path.display(),
            if r.patch.is_empty() {
                format!("unknown {what}")
            } else {
                r.patch.clone()
            }
        );
        return Err(ExitCode::from(2));
    }
    Ok(r)
}

/// The `--explain` annotation body for one attempt: `rule [stage]`
/// plus the detail when one was traced.
fn attempt_line(a: &cocci_core::explain::RuleAttempt) -> String {
    match &a.detail {
        Some(d) => format!("{} [{}] {d}", a.rule, a.stage),
        None => format!("{} [{}]", a.rule, a.stage),
    }
}

/// Print load-time lint diagnostics to stderr (deny lines always, warn
/// lines unless `--quiet`) and return `true` when deny-level findings
/// must refuse the run.
fn report_load_lints(lints: &[Lint], quiet: bool) -> bool {
    for l in lints {
        if l.level == LintLevel::Deny || !quiet {
            eprintln!("spatch: lint [{}]: {}", l.level, l.finding.text_line());
        }
    }
    has_deny(lints)
}

/// `spatch lint <patch.cocci|rules-dir>`: static analysis of the rules
/// themselves — nothing in the corpus is touched. Exit 0 clean, 1 on
/// deny-level findings, 2 when the rules cannot be loaded.
fn run_lint(args: &Args) -> ExitCode {
    let t0 = std::time::Instant::now();
    let target = &args.targets[0];
    let cfg = match lint_config(args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    // Gather `(source, rule id, text)` triples: one per `*.cocci` file
    // for a directory (validating each metadata header exactly as scan's
    // loader would), or the single file itself.
    let mut rule_files: Vec<PathBuf> = Vec::new();
    if target.is_dir() {
        match std::fs::read_dir(target) {
            Ok(rd) => {
                for entry in rd.filter_map(|e| e.ok()) {
                    let p = entry.path();
                    if p.extension().is_some_and(|x| x == "cocci") {
                        rule_files.push(p);
                    }
                }
            }
            Err(e) => {
                eprintln!("spatch: cannot read {}: {e}", target.display());
                return ExitCode::from(2);
            }
        }
        rule_files.sort();
        if rule_files.is_empty() {
            eprintln!("spatch: {}: no .cocci rule files", target.display());
            return ExitCode::from(2);
        }
    } else {
        rule_files.push(target.clone());
    }
    let mut sources: Vec<(String, String, String)> = Vec::new();
    for p in &rule_files {
        let text = match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("spatch: cannot read {}: {e}", p.display());
                return ExitCode::from(2);
            }
        };
        let stem = p
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("rule")
            .to_string();
        let meta = match cocci_core::parse_rule_metadata(&text, &stem) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("spatch: {}: {e}", p.display());
                return ExitCode::from(2);
            }
        };
        sources.push((p.display().to_string(), meta.id, text));
    }
    let mut patches: Vec<SemanticPatch> = Vec::new();
    for (src, _, text) in &sources {
        match parse_semantic_patch(text) {
            Ok(p) => patches.push(p),
            Err(e) => {
                eprintln!("spatch: {src}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let mut lints: Vec<Lint> = Vec::new();
    for ((src, _, text), patch) in sources.iter().zip(&patches) {
        lints.extend(lint_patch(patch, src, Some(text), &cfg));
    }
    let entries: Vec<(&str, &str, &SemanticPatch)> = sources
        .iter()
        .zip(&patches)
        .map(|((src, id, _), p)| (id.as_str(), src.as_str(), p))
        .collect();
    lints.extend(lint_duplicates(&entries, &cfg));

    let denies = lints.iter().filter(|l| l.level == LintLevel::Deny).count();
    let warns = lints.len() - denies;
    // The lint metrics block: per-class finding counts plus how long
    // the whole analysis took — CI's `lint_overhead_frac` gate reads
    // the wall-clock from here instead of timing the process.
    let total_seconds = t0.elapsed().as_secs_f64();
    let mut metrics = RunMetrics::default();
    metrics
        .counters
        .insert("lint_rule_files".to_string(), sources.len() as u64);
    metrics
        .counters
        .insert("lint_findings".to_string(), lints.len() as u64);
    for l in &lints {
        *metrics
            .counters
            .entry(format!("lint_{}", l.finding.rule))
            .or_insert(0) += 1;
    }
    match args.format.unwrap_or(Format::Text) {
        Format::Text => {
            for l in &lints {
                println!("{}", l.finding.text_line());
            }
        }
        Format::Json | Format::Sarif => {
            // Reuse the apply-report shape: a lint run is a corpus run
            // that never walked any files, carrying only the `lints`
            // block (and its metrics) — so downstream JSON/SARIF
            // consumers need nothing new.
            let report = ApplyReport {
                patch: target.display().to_string(),
                patch_hash: 0,
                threads: 0,
                prefilter: false,
                resumed: 0,
                total_seconds,
                metrics: Some(metrics.clone()),
                lints: lints.iter().map(|l| l.finding.clone()).collect(),
                explain: None,
                files: Vec::new(),
            };
            if args.format == Some(Format::Json) {
                print!("{}", report.to_json());
            } else {
                print!(
                    "{}",
                    cocci_core::to_sarif_with(&report, &cocci_lint::sarif_rules(&cfg))
                );
            }
        }
    }
    if args.stats {
        eprintln!("spatch lint stats:");
        for (name, v) in &metrics.counters {
            eprintln!("  counter {name}: {v}");
        }
        eprintln!("  wall ms={:.3}", total_seconds * 1e3);
    }
    if !args.quiet {
        eprintln!(
            "spatch: lint: {} finding(s) ({denies} deny, {warns} warn) across {} rule file(s)",
            lints.len(),
            sources.len()
        );
    }
    if denies > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `spatch scan --rules <dir>`: N rules, one parse per file.
fn run_scan(args: &Args) -> ExitCode {
    let rules_dir = args.rules.as_ref().expect("validated in parse_args");
    let set = match CompiledRuleSet::load_dir(rules_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("spatch: {e}");
            return ExitCode::from(2);
        }
    };
    // Lint the rules before touching the corpus: a rule that can never
    // match (or never bind) should fail here, not hours into a walk.
    let lints = if args.no_lint {
        Vec::new()
    } else {
        let cfg = match lint_config(args) {
            Ok(c) => c,
            Err(code) => return code,
        };
        lint_ruleset(&set, &cfg)
    };
    if report_load_lints(&lints, args.quiet) {
        eprintln!(
            "spatch: {}: deny-level lint findings; fix the rules or pass --no-lint",
            rules_dir.display()
        );
        return ExitCode::from(2);
    }
    let previous = match &args.resume {
        Some(path) => match load_resume(path, set.hash, "rule set") {
            Ok(r) => Some(r),
            Err(code) => return code,
        },
        None => None,
    };
    let explain_cfg = args
        .explain
        .as_deref()
        .map(|spec| Arc::new(ExplainConfig::parse(spec)));
    telemetry::init(args.trace_out.as_deref(), args.stats, explain_cfg.is_some());
    let mut source = WalkSource::discover(&args.targets, &args.ignore);
    let opts = CorpusOptions {
        threads: args.threads,
        no_prefilter: args.no_prefilter,
        no_flow: args.no_flow,
        timeout_ms: args.timeout_ms,
        explain: explain_cfg.clone(),
        ..Default::default()
    };
    let quiet = args.quiet;
    let explain_cfg = &explain_cfg;
    let mut heartbeat = telemetry::Heartbeat::new(source.remaining(), quiet);
    let run = scan_corpus(
        &set,
        &mut source,
        &opts,
        previous.as_ref(),
        |name, _original, outcome| {
            heartbeat.tick(outcome.findings.len());
            if let (Some(cfg), false) = (explain_cfg, quiet) {
                for a in outcome
                    .attempts
                    .iter()
                    .filter(|a| cfg.matches(name, &a.rule))
                {
                    eprintln!("spatch: explain: {name}: {}", attempt_line(a));
                }
            }
            if quiet || outcome.error.is_some() {
                return; // errors are reported once, from the report below
            }
            let ran = outcome.rules.len();
            let pruned = outcome.rules_pruned;
            if outcome.findings.is_empty() && outcome.suppressed == 0 {
                eprintln!("spatch: {name}: no findings ({ran} rule(s) ran, {pruned} pruned)");
            } else {
                eprintln!(
                    "spatch: {name}: {} finding(s), {} suppressed ({ran} rule(s) ran, {pruned} pruned)",
                    outcome.findings.len(),
                    outcome.suppressed
                );
            }
        },
    );
    heartbeat.finish();
    let mut report = match run {
        Ok(r) => r,
        Err(e) => {
            // Run-level refusal (e.g. --no-flow vs `when exists` rules).
            eprintln!("spatch: {}: {e}", rules_dir.display());
            return ExitCode::from(2);
        }
    };
    report.patch = rules_dir.display().to_string();
    report.lints = lints.iter().map(|l| l.finding.clone()).collect();
    if let Some(path) = &args.trace_out {
        if let Err(e) = telemetry::write_trace(path) {
            eprintln!("spatch: cannot write trace {}: {e}", path.display());
        } else if !quiet {
            eprintln!("spatch: trace written to {}", path.display());
        }
    }
    if args.stats {
        telemetry::print_stats(&report);
    }

    let mut failures = 0usize;
    for f in &report.files {
        match f.status {
            cocci_core::FileStatus::Error => {
                eprintln!(
                    "spatch: {}: {}",
                    f.name,
                    f.error.as_deref().unwrap_or("unknown error")
                );
                failures += 1;
            }
            cocci_core::FileStatus::Timeout => {
                eprintln!(
                    "spatch: {}: {}",
                    f.name,
                    f.error.as_deref().unwrap_or("timed out")
                );
            }
            _ => {}
        }
    }
    if report.resumed > 0 && !quiet {
        eprintln!(
            "spatch: resumed: {} unchanged file(s) skipped via {}",
            report.resumed,
            args.resume
                .as_deref()
                .map(|p| p.display().to_string())
                .unwrap_or_default()
        );
    }
    if let Some(path) = &args.report {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("spatch: cannot write report {}: {e}", path.display());
            failures += 1;
        } else if !quiet {
            eprintln!("spatch: report written to {}", path.display());
        }
    }

    match args.format.unwrap_or(Format::Text) {
        Format::Text => {
            for f in &report.files {
                for fd in &f.findings {
                    println!("{}", fd.text_line());
                }
            }
        }
        Format::Json => print!("{}", report.to_json()),
        Format::Sarif => {
            // Every loaded rule goes into the tool section, severities
            // and message overrides included — findingless rules keep
            // the output shape stable run over run.
            let rules: Vec<SarifRule> = set
                .rules
                .iter()
                .map(|r| SarifRule {
                    id: r.meta.id.clone(),
                    level: r.meta.severity.as_str(),
                    description: r
                        .meta
                        .message
                        .clone()
                        .unwrap_or_else(|| format!("semantic-patch rule {}", r.meta.id)),
                })
                .collect();
            print!("{}", cocci_core::to_sarif_with(&report, &rules));
        }
    }
    if !quiet {
        let total_findings: usize = report.files.iter().map(|f| f.findings.len()).sum();
        let suppressed: usize = report.files.iter().map(|f| f.suppressed).sum();
        eprintln!(
            "spatch: {total_findings} finding(s), {suppressed} suppressed, across {} file(s) with {} rule(s), {failures} failure(s) ({})",
            report.files.len(),
            set.len(),
            report.summary()
        );
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.scan {
        return run_scan(&args);
    }
    if args.lint {
        return run_lint(&args);
    }
    let sp_file = args.sp_file.as_ref().expect("validated in parse_args");
    let patch_text = match std::fs::read_to_string(sp_file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("spatch: cannot read {}: {e}", sp_file.display());
            return ExitCode::from(2);
        }
    };
    let patch = match parse_semantic_patch(&patch_text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("spatch: {}: {e}", sp_file.display());
            return ExitCode::from(2);
        }
    };
    let patch_hash = cocci_core::content_hash(&patch_text);

    // Lint at load, before anything else runs: deny-level diagnostics
    // mean every match would fail (or never happen) — refuse up front.
    let lints = if args.no_lint {
        Vec::new()
    } else {
        let cfg = match lint_config(&args) {
            Ok(c) => c,
            Err(code) => return code,
        };
        lint_patch(
            &patch,
            &sp_file.display().to_string(),
            Some(&patch_text),
            &cfg,
        )
    };
    if report_load_lints(&lints, args.quiet) {
        eprintln!(
            "spatch: {}: deny-level lint findings; fix the patch or pass --no-lint",
            sp_file.display()
        );
        return ExitCode::from(2);
    }

    // Report mode: explicit `--mode report`, or auto-detected from a
    // transformation-free patch (pure-context bodies can only ever
    // produce findings).
    let mode = args.mode.unwrap_or(if patch.is_report_only() {
        Mode::Report
    } else {
        Mode::Patch
    });
    if mode == Mode::Report && !patch.is_report_only() {
        // A transforming patch rewrites the in-memory text between
        // rules (sequential semantics), so findings of later rules
        // would carry line/col of an intermediate text no file on disk
        // ever has. Report mode therefore requires a
        // transformation-free patch, as upstream Coccinelle does.
        eprintln!(
            "spatch: report mode needs a transformation-free patch \
             (this one has `-`/`+` lines; drop them or run in patch mode)"
        );
        return ExitCode::from(2);
    }
    if mode == Mode::Report && (args.in_place || args.output.is_some()) {
        eprintln!(
            "spatch: report mode emits findings, never rewrites; \
             --in-place / -o make no sense with it"
        );
        return ExitCode::from(2);
    }
    if args.format.is_some() && mode != Mode::Report {
        eprintln!("spatch: --format only applies to report mode (--mode report)");
        return ExitCode::from(2);
    }

    // `-o` holds exactly one output file; a directory walk (or several
    // targets) could produce several changed files that would silently
    // overwrite each other in it.
    if args.output.is_some() && (args.targets.len() > 1 || args.targets[0].is_dir()) {
        eprintln!(
            "spatch: -o takes a single input file; use --in-place (or diff mode) for \
             directories and multi-file runs"
        );
        return ExitCode::from(2);
    }

    // Incremental re-apply: load the previous run's report up front so a
    // bad path fails before any work happens.
    let previous = match &args.resume {
        Some(path) => match load_resume(path, patch_hash, "semantic patch") {
            Ok(r) => Some(r),
            Err(code) => return code,
        },
        None => None,
    };

    let explain_cfg = args
        .explain
        .as_deref()
        .map(|spec| Arc::new(ExplainConfig::parse(spec)));
    telemetry::init(args.trace_out.as_deref(), args.stats, explain_cfg.is_some());
    let mut source = WalkSource::discover(&args.targets, &args.ignore);
    let opts = CorpusOptions {
        threads: args.threads,
        no_prefilter: args.no_prefilter,
        no_flow: args.no_flow,
        timeout_ms: args.timeout_ms,
        explain: explain_cfg.clone(),
        ..Default::default()
    };

    // The sink runs while each batch's text is still in memory: print the
    // diff / rewrite the file immediately, then let the text drop. Write
    // failures are collected so the report can be corrected afterwards
    // (the driver outcome says "changed", but the change never landed).
    let mut changed = 0usize;
    let mut write_errors: Vec<(String, String)> = Vec::new();
    let explain_cfg = &explain_cfg;
    let mut heartbeat = telemetry::Heartbeat::new(source.remaining(), args.quiet);
    let run = apply_to_corpus_resumed(
        &patch,
        &mut source,
        &opts,
        previous.as_ref(),
        |name, original, outcome| {
            heartbeat.tick(outcome.findings.len());
            if let (Some(cfg), false) = (explain_cfg, args.quiet) {
                for a in outcome
                    .attempts
                    .iter()
                    .filter(|a| cfg.matches(name, &a.rule))
                {
                    eprintln!("spatch: explain: {name}: {}", attempt_line(a));
                }
            }
            if outcome.error.is_some() {
                return; // reported once from the report below
            }
            let Some(new_text) = &outcome.output else {
                if !args.quiet {
                    let what = if outcome.pruned {
                        "no match (pruned)"
                    } else if !outcome.findings.is_empty() {
                        "matched, findings recorded"
                    } else if outcome.matches > 0 {
                        "matched, no edits"
                    } else {
                        "no match"
                    };
                    eprintln!("spatch: {name}: {what}");
                }
                return;
            };
            if mode == Mode::Report {
                // A mixed patch's transform rules may still produce
                // edits in memory; report mode never surfaces them.
                return;
            }
            changed += 1;
            if args.in_place {
                if let Err(e) = std::fs::write(name, new_text) {
                    write_errors.push((name.to_string(), format!("cannot write: {e}")));
                    changed -= 1;
                } else if !args.quiet {
                    // Flow-routed rules report per-path witnesses too: a
                    // cross-branch binding that forked shows up once per
                    // rewritten path.
                    if outcome.witnesses > 0 {
                        eprintln!(
                            "spatch: {name}: rewritten ({} matches, {} witnesses)",
                            outcome.matches, outcome.witnesses
                        );
                    } else {
                        eprintln!("spatch: {name}: rewritten ({} matches)", outcome.matches);
                    }
                }
            } else if let Some(out) = &args.output {
                if let Err(e) = std::fs::write(out, new_text) {
                    write_errors.push((
                        name.to_string(),
                        format!("cannot write {}: {e}", out.display()),
                    ));
                    changed -= 1;
                }
            } else {
                print!("{}", diff::unified_diff(name, original, new_text, 3));
            }
        },
    );

    heartbeat.finish();
    let mut report = match run {
        Ok(r) => r,
        Err(e) => {
            // Patch compile error: run-level, reported exactly once.
            eprintln!("spatch: {}: {e}", sp_file.display());
            return ExitCode::from(2);
        }
    };
    report.patch = sp_file.display().to_string();
    report.patch_hash = patch_hash;
    report.lints = lints.iter().map(|l| l.finding.clone()).collect();
    if let Some(path) = &args.trace_out {
        if let Err(e) = telemetry::write_trace(path) {
            eprintln!("spatch: cannot write trace {}: {e}", path.display());
        } else if !args.quiet {
            eprintln!("spatch: trace written to {}", path.display());
        }
    }
    if args.stats {
        telemetry::print_stats(&report);
    }

    // A file whose rewrite failed to land is an error, not a change —
    // downgrade its report entry before anything consumes it.
    for (name, msg) in write_errors {
        if let Some(f) = report.files.iter_mut().find(|f| f.name == name) {
            f.status = cocci_core::FileStatus::Error;
            f.error = Some(msg);
        }
    }

    // Every failed file — parse/rewrite/write errors and unreadable paths
    // alike — is in the report exactly once; report them from there.
    // Timeouts are warnings, not failures: the whole point of the budget
    // is that one pathological file must not sink the corpus run.
    let mut failures = 0usize;
    for f in &report.files {
        match f.status {
            cocci_core::FileStatus::Error => {
                eprintln!(
                    "spatch: {}: {}",
                    f.name,
                    f.error.as_deref().unwrap_or("unknown error")
                );
                failures += 1;
            }
            cocci_core::FileStatus::Timeout => {
                eprintln!(
                    "spatch: {}: {}",
                    f.name,
                    f.error.as_deref().unwrap_or("timed out")
                );
            }
            _ => {}
        }
    }
    if report.resumed > 0 && !args.quiet {
        eprintln!(
            "spatch: resumed: {} unchanged file(s) skipped via {}",
            report.resumed,
            args.resume
                .as_deref()
                .map(|p| p.display().to_string())
                .unwrap_or_default()
        );
    }

    if let Some(path) = &args.report {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("spatch: cannot write report {}: {e}", path.display());
            failures += 1;
        } else if !args.quiet {
            eprintln!("spatch: report written to {}", path.display());
        }
    }

    // Report mode: the findings are the product. Text goes to stdout
    // grep-style; `json` emits the whole apply report (findings
    // embedded); `sarif` emits a SARIF 2.1.0 document for CI ingestion.
    // Resumed files kept their findings in the report, so every format
    // sees the full set even on incremental runs.
    let total_findings: usize = report.files.iter().map(|f| f.findings.len()).sum();
    if mode == Mode::Report {
        match args.format.unwrap_or(Format::Text) {
            Format::Text => {
                for f in &report.files {
                    for fd in &f.findings {
                        println!("{}", fd.text_line());
                    }
                }
            }
            Format::Json => print!("{}", report.to_json()),
            Format::Sarif => print!("{}", cocci_core::to_sarif(&report)),
        }
    }
    if !args.quiet {
        if mode == Mode::Report {
            let suppressed: usize = report.files.iter().map(|f| f.suppressed).sum();
            let suppressed_note = if suppressed > 0 {
                format!(" ({suppressed} suppressed)")
            } else {
                String::new()
            };
            eprintln!(
                "spatch: {total_findings} finding(s){suppressed_note} across {} file(s), {failures} failure(s) ({})",
                report.files.len(),
                report.summary()
            );
        } else {
            eprintln!(
                "spatch: {changed}/{} file(s) transformed, {failures} failure(s) ({})",
                report.files.len(),
                report.summary()
            );
        }
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
