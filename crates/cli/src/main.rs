//! `spatch` — command-line front end for the semantic-patch engine,
//! mirroring Coccinelle's `spatch` usage:
//!
//! ```text
//! spatch --sp-file patch.cocci file1.c file2.c ...
//!
//! Options:
//!   --sp-file <FILE>   semantic patch to apply (required)
//!   --in-place         rewrite files on disk instead of printing a diff
//!   -o <FILE>          write the single patched file here
//!   -j <N>             worker threads (default: all cores)
//!   --quiet            suppress per-file match reports
//! ```
//!
//! Without `--in-place`/`-o`, a unified diff of every changed file is
//! printed to stdout — the traditional spatch workflow of reviewing the
//! change before enacting it.

mod diff;

use cocci_core::apply_to_files;
use cocci_smpl::parse_semantic_patch;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    sp_file: PathBuf,
    files: Vec<PathBuf>,
    in_place: bool,
    output: Option<PathBuf>,
    threads: usize,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: spatch --sp-file <patch.cocci> [--in-place] [-o FILE] [-j N] [--quiet] <files...>"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut sp_file = None;
    let mut files = Vec::new();
    let mut in_place = false;
    let mut output = None;
    let mut threads = 0usize;
    let mut quiet = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sp-file" => sp_file = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--in-place" => in_place = true,
            "-o" => output = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "-j" => {
                threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option: {other}");
                usage();
            }
            other => files.push(PathBuf::from(other)),
        }
    }
    let Some(sp_file) = sp_file else { usage() };
    if files.is_empty() {
        usage();
    }
    Args {
        sp_file,
        files,
        in_place,
        output,
        threads,
        quiet,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let patch_text = match std::fs::read_to_string(&args.sp_file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("spatch: cannot read {}: {e}", args.sp_file.display());
            return ExitCode::from(2);
        }
    };
    let patch = match parse_semantic_patch(&patch_text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("spatch: {}: {e}", args.sp_file.display());
            return ExitCode::from(2);
        }
    };

    let mut inputs = Vec::new();
    for f in &args.files {
        match std::fs::read_to_string(f) {
            Ok(t) => inputs.push((f.display().to_string(), t)),
            Err(e) => {
                eprintln!("spatch: cannot read {}: {e}", f.display());
                return ExitCode::from(2);
            }
        }
    }

    let outcomes = apply_to_files(&patch, &inputs, args.threads);

    let mut failures = 0usize;
    let mut changed = 0usize;
    for (outcome, (name, original)) in outcomes.iter().zip(&inputs) {
        if let Some(err) = &outcome.error {
            eprintln!("spatch: {name}: {err}");
            failures += 1;
            continue;
        }
        let Some(new_text) = &outcome.output else {
            if !args.quiet {
                eprintln!("spatch: {name}: no match");
            }
            continue;
        };
        changed += 1;
        if args.in_place {
            if let Err(e) = std::fs::write(name, new_text) {
                eprintln!("spatch: cannot write {name}: {e}");
                failures += 1;
            } else if !args.quiet {
                eprintln!("spatch: {name}: rewritten ({} matches)", outcome.matches);
            }
        } else if let Some(out) = &args.output {
            if let Err(e) = std::fs::write(out, new_text) {
                eprintln!("spatch: cannot write {}: {e}", out.display());
                failures += 1;
            }
        } else {
            print!("{}", diff::unified_diff(name, original, new_text, 3));
        }
    }
    if !args.quiet {
        eprintln!(
            "spatch: {changed}/{} file(s) transformed, {failures} failure(s)",
            inputs.len()
        );
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
