//! Telemetry surfaces for `spatch`: the `--trace-out` Chrome trace
//! file, the `--stats` aggregate table, and the TTY heartbeat.
//!
//! All three views derive from the same recorded data — the engine
//! builds the report's `metrics` block from [`cocci_trace::collect`]
//! after its workers join, and this module re-reads the same rings for
//! the Chrome file — so phase totals agree across the trace JSON, the
//! stats table, and the report by construction.

use cocci_core::{ApplyReport, FileStatus, RunMetrics};
use std::collections::BTreeMap;
use std::io::{IsTerminal, Write};
use std::path::Path;
use std::time::Instant;

/// Turn tracing on when any telemetry surface was requested —
/// `--explain` included: its funnel counters and kill-site instant
/// events ride the same rings. Returns whether tracing is live so
/// callers can skip collection otherwise.
pub fn init(trace_out: Option<&Path>, stats: bool, explain: bool) -> bool {
    let on = trace_out.is_some() || stats || explain;
    if on {
        cocci_trace::set_enabled(true);
    }
    on
}

/// Write the Chrome trace-event file (open in Perfetto / `about:tracing`).
pub fn write_trace(path: &Path) -> std::io::Result<()> {
    let data = cocci_trace::collect();
    let mut buf = Vec::new();
    data.write_chrome(&mut buf)?;
    std::fs::write(path, buf)
}

/// Print the `--stats` table to stderr (stdout is reserved for diffs,
/// findings, and JSON/SARIF documents).
///
/// Count-like lines (span counts, counters, per-rule matches/findings)
/// are deterministic across `-j` values; timing columns are wall-clock
/// and vary run to run.
pub fn print_stats(report: &ApplyReport) {
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "spatch stats:");
    match &report.metrics {
        Some(m) => print_metrics(&mut err, m, report.total_seconds),
        None => {
            let _ = writeln!(err, "  (no metrics recorded)");
        }
    }

    // Per-rule aggregate over every file's scan rows (patch-mode runs
    // have no per-rule rows and skip this table).
    let mut rules: BTreeMap<&str, (usize, usize, f64)> = BTreeMap::new();
    for f in &report.files {
        for r in &f.rules {
            let e = rules.entry(&r.id).or_insert((0, 0, 0.0));
            e.0 += r.matches;
            e.1 += r.findings;
            e.2 += r.seconds;
        }
    }
    if !rules.is_empty() {
        let _ = writeln!(err, "  rules:");
        let mut by_time: Vec<_> = rules.into_iter().collect();
        by_time.sort_by(|a, b| b.1 .2.total_cmp(&a.1 .2).then(a.0.cmp(b.0)));
        for (id, (matches, findings, secs)) in by_time {
            let _ = writeln!(
                err,
                "    rule {id}: matches={matches} findings={findings} ms={:.3}",
                secs * 1e3
            );
        }
    }

    // Top-10 slowest files. Satellite fix upstream guarantees every
    // status — timeout and error rows included — carries its elapsed
    // seconds, so quarantined work shows up here too.
    let mut slowest: Vec<&cocci_core::FileReport> = report.files.iter().collect();
    slowest.sort_by(|a, b| b.seconds.total_cmp(&a.seconds).then(a.name.cmp(&b.name)));
    if !slowest.is_empty() {
        let _ = writeln!(err, "  slowest files:");
        for f in slowest.iter().take(10) {
            let status = match f.status {
                FileStatus::Timeout => " [timeout]",
                FileStatus::Error => " [error]",
                _ => "",
            };
            let _ = writeln!(err, "    {:>10.3} ms  {}{status}", f.seconds * 1e3, f.name);
        }
    }
}

fn print_metrics(err: &mut impl Write, m: &RunMetrics, wall_seconds: f64) {
    // Every phase prints, zero or not: the table's shape is part of its
    // contract (CI greps it, tests diff it across thread counts).
    for phase in cocci_trace::Phase::ALL {
        let name = phase.name();
        let count = m.phase_counts.get(name).copied().unwrap_or(0);
        let ns = m.phase_total_ns(name);
        let _ = writeln!(
            err,
            "  phase {name}: spans={count} ms={:.3}",
            ns as f64 / 1e6
        );
    }
    for counter in cocci_trace::Counter::ALL {
        let name = counter.name();
        let _ = writeln!(err, "  counter {name}: {}", m.counter(name));
    }
    // The match funnel: attempts in at the top, survivors at each stage
    // below. Derived from the same counters printed above, so the two
    // views reconcile by construction.
    let _ = writeln!(err, "  funnel:");
    for (label, v) in cocci_core::explain::funnel_rows(|name| m.counter(name)) {
        let _ = writeln!(err, "    {label}: {v}");
    }
    if let Some(pool) = &m.pool {
        let _ = writeln!(
            err,
            "  pool: workers={} steals={} queue_depth_max={} idle={:.1}% utilization={:.1}%",
            pool.workers,
            pool.steals,
            pool.queue_depth_max,
            pool.idle_frac(wall_seconds) * 100.0,
            pool.utilization_pct(wall_seconds)
        );
    }
}

/// A single-line progress heartbeat on stderr for long corpus runs:
/// `done/total` files, findings so far, elapsed, throughput, and an ETA
/// extrapolated from it. Active only on a TTY (CI logs and piped runs
/// never see it) and redrawn in place with `\r`.
pub struct Heartbeat {
    active: bool,
    start: Instant,
    last_draw: Instant,
    total: usize,
    done: usize,
    findings: usize,
}

impl Heartbeat {
    pub fn new(total: usize, quiet: bool) -> Heartbeat {
        let start = Instant::now();
        Heartbeat {
            active: !quiet && std::io::stderr().is_terminal(),
            start,
            last_draw: start,
            total,
            done: 0,
            findings: 0,
        }
    }

    /// Record one finished file; redraw at most every 100 ms.
    pub fn tick(&mut self, findings: usize) {
        self.done += 1;
        self.findings += findings;
        if !self.active || self.last_draw.elapsed().as_millis() < 100 {
            return;
        }
        self.last_draw = Instant::now();
        let elapsed = self.start.elapsed().as_secs_f64();
        // A files/s rate extrapolated from under a second of work is
        // noise; show `--:--` until the rate means something rather
        // than flashing a wild ETA at the start of every run.
        let eta = if elapsed >= 1.0 && self.done > 0 {
            let rate = self.done as f64 / elapsed;
            format!(
                "{:.0} files/s, ETA {:.0}s",
                rate,
                self.total.saturating_sub(self.done) as f64 / rate.max(1e-9)
            )
        } else {
            "ETA --:--".to_string()
        };
        eprint!(
            "\r\x1b[2Kspatch: {}/{} files, {} finding(s), {:.1}s elapsed, {eta}",
            self.done, self.total, self.findings, elapsed
        );
        let _ = std::io::stderr().flush();
    }

    /// Clear the progress line so the run summary prints cleanly.
    pub fn finish(&self) {
        if self.active {
            eprint!("\r\x1b[2K");
            let _ = std::io::stderr().flush();
        }
    }
}
