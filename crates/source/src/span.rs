//! Byte spans and file identifiers.

use std::fmt;

/// Opaque handle to a file registered in a
/// [`SourceMap`](crate::SourceMap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub(crate) u32);

impl FileId {
    /// Raw index of the file in its source map.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct a `FileId` from a raw index. Intended for tests and
    /// serialization; normal code obtains ids from `SourceMap::add_file`.
    pub fn from_index(i: usize) -> Self {
        FileId(i as u32)
    }
}

/// Half-open byte range `[start, end)` into a single source file.
///
/// Spans are deliberately file-agnostic (they do not embed a [`FileId`]);
/// AST nodes carry the file association once at the root, which keeps the
/// per-node footprint at 8 bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Span {
    /// Inclusive start offset.
    pub start: u32,
    /// Exclusive end offset.
    pub end: u32,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start {start} > end {end}");
        Span { start, end }
    }

    /// The empty span at `offset`. Used for pure insertions.
    pub fn empty(offset: u32) -> Self {
        Span {
            start: offset,
            end: offset,
        }
    }

    /// A synthetic span for nodes that do not originate from source text
    /// (e.g. code produced by `+` lines of a semantic patch).
    pub const SYNTHETIC: Span = Span {
        start: u32::MAX,
        end: u32::MAX,
    };

    /// Whether this span is the synthetic marker.
    pub fn is_synthetic(self) -> bool {
        self.start == u32::MAX
    }

    /// Number of bytes covered.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Smallest span covering both `self` and `other`.
    /// Synthetic spans are absorbed by real ones.
    pub fn merge(self, other: Span) -> Span {
        if self.is_synthetic() {
            return other;
        }
        if other.is_synthetic() {
            return self;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Whether `self` fully contains `other`.
    pub fn contains(self, other: Span) -> bool {
        self.start <= other.start && other.end <= self.end
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthetic() {
            write!(f, "<syn>")
        } else {
            write!(f, "{}..{}", self.start, self.end)
        }
    }
}

/// 1-based line/column pair produced by
/// [`SourceFile::line_col`](crate::SourceFile::line_col).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (byte-oriented).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_overlapping() {
        assert_eq!(Span::new(1, 5).merge(Span::new(3, 9)), Span::new(1, 9));
    }

    #[test]
    fn merge_disjoint() {
        assert_eq!(Span::new(10, 12).merge(Span::new(2, 4)), Span::new(2, 12));
    }

    #[test]
    fn merge_synthetic_is_identity() {
        let s = Span::new(4, 8);
        assert_eq!(s.merge(Span::SYNTHETIC), s);
        assert_eq!(Span::SYNTHETIC.merge(s), s);
        assert!(Span::SYNTHETIC.merge(Span::SYNTHETIC).is_synthetic());
    }

    #[test]
    fn contains() {
        assert!(Span::new(0, 10).contains(Span::new(3, 7)));
        assert!(Span::new(0, 10).contains(Span::new(0, 10)));
        assert!(!Span::new(0, 10).contains(Span::new(3, 11)));
    }

    #[test]
    fn empty_and_len() {
        assert!(Span::empty(5).is_empty());
        assert_eq!(Span::new(2, 6).len(), 4);
    }
}
