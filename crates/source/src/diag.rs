//! Diagnostics: errors and warnings with source positions.

use crate::{FileId, SourceMap, Span};
use std::fmt;

/// Severity / category of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagnosticKind {
    /// A hard error; the producing phase failed.
    Error,
    /// A recoverable oddity worth reporting.
    Warning,
    /// Informational note (e.g. which rule matched where).
    Note,
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagnosticKind::Error => write!(f, "error"),
            DiagnosticKind::Warning => write!(f, "warning"),
            DiagnosticKind::Note => write!(f, "note"),
        }
    }
}

/// A single diagnostic message anchored to a source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Severity.
    pub kind: DiagnosticKind,
    /// File the diagnostic refers to, when known.
    pub file: Option<FileId>,
    /// Location within the file.
    pub span: Span,
    /// Human-readable message.
    pub message: String,
}

impl Diagnostic {
    /// Construct an error diagnostic.
    pub fn error(file: FileId, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            kind: DiagnosticKind::Error,
            file: Some(file),
            span,
            message: message.into(),
        }
    }

    /// Construct a warning diagnostic.
    pub fn warning(file: FileId, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            kind: DiagnosticKind::Warning,
            file: Some(file),
            span,
            message: message.into(),
        }
    }

    /// Construct a file-less error (e.g. configuration problems).
    pub fn bare_error(message: impl Into<String>) -> Self {
        Diagnostic {
            kind: DiagnosticKind::Error,
            file: None,
            span: Span::SYNTHETIC,
            message: message.into(),
        }
    }

    /// Render with `name:line:col` context resolved against `sm`.
    pub fn render(&self, sm: &SourceMap) -> String {
        match self.file {
            Some(f) if !self.span.is_synthetic() => {
                format!(
                    "{}: {}: {}",
                    sm.describe(f, self.span),
                    self.kind,
                    self.message
                )
            }
            Some(f) => format!("{}: {}: {}", sm.file(f).name, self.kind, self.message),
            None => format!("{}: {}", self.kind, self.message),
        }
    }
}

/// Accumulator for diagnostics produced during a phase.
#[derive(Debug, Default, Clone)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// New, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Shorthand for pushing an error.
    pub fn error(&mut self, file: FileId, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::error(file, span, message));
    }

    /// Shorthand for pushing a warning.
    pub fn warning(&mut self, file: FileId, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::warning(file, span, message));
    }

    /// Whether any error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.kind == DiagnosticKind::Error)
    }

    /// All recorded diagnostics in order.
    pub fn items(&self) -> &[Diagnostic] {
        &self.items
    }

    /// Number of recorded diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Merge another accumulator into this one.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// Render all diagnostics, one per line.
    pub fn render_all(&self, sm: &SourceMap) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.render(sm));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_with_position() {
        let mut sm = SourceMap::new();
        let id = sm.add_file("f.c", "abc\ndef\n");
        let d = Diagnostic::error(id, Span::new(4, 5), "bad token");
        assert_eq!(d.render(&sm), "f.c:2:1: error: bad token");
    }

    #[test]
    fn render_bare() {
        let sm = SourceMap::new();
        let d = Diagnostic::bare_error("no input files");
        assert_eq!(d.render(&sm), "error: no input files");
    }

    #[test]
    fn has_errors_distinguishes_warnings() {
        let mut sm = SourceMap::new();
        let id = sm.add_file("f.c", "x");
        let mut ds = Diagnostics::new();
        ds.warning(id, Span::new(0, 1), "odd");
        assert!(!ds.has_errors());
        ds.error(id, Span::new(0, 1), "bad");
        assert!(ds.has_errors());
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn render_all_multiline() {
        let mut sm = SourceMap::new();
        let id = sm.add_file("f.c", "x\ny");
        let mut ds = Diagnostics::new();
        ds.error(id, Span::new(0, 1), "one");
        ds.error(id, Span::new(2, 3), "two");
        let r = ds.render_all(&sm);
        assert_eq!(r.lines().count(), 2);
        assert!(r.contains("f.c:1:1"));
        assert!(r.contains("f.c:2:1"));
    }
}
