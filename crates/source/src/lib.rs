//! Source-file management: file tables, byte spans, line/column mapping and
//! diagnostics.
//!
//! Every other crate in the workspace refers to program text through the
//! types defined here. A [`Span`] is a half-open byte range into a file
//! registered in a [`SourceMap`]; diagnostics carry spans so that errors can
//! be rendered with line/column context, the way `spatch` reports parse
//! errors in semantic patches and target files.

mod diag;
pub mod intern;
mod span;

pub use diag::{Diagnostic, DiagnosticKind, Diagnostics};
pub use intern::{intern, FnvBuild, Interner, Symbol};
pub use span::{FileId, LineCol, Span};

use std::fmt;
use std::sync::Arc;

/// A single registered source file: its name, contents, and a precomputed
/// table of line-start offsets for O(log n) line/column lookup.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Identifier of this file within its [`SourceMap`].
    pub id: FileId,
    /// Display name (usually a path; synthetic buffers use pseudo-names
    /// such as `<patch>` or `<generated>`).
    pub name: String,
    /// Full text of the file.
    pub text: Arc<str>,
    /// Byte offsets at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
}

impl SourceFile {
    fn new(id: FileId, name: String, text: Arc<str>) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceFile {
            id,
            name,
            text,
            line_starts,
        }
    }

    /// Translate a byte offset into a 1-based line/column pair.
    ///
    /// Offsets past the end of the file clamp to the final position.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let offset = offset.min(self.text.len() as u32);
        let line = match self.line_starts.binary_search(&offset) {
            Ok(l) => l,
            Err(l) => l - 1,
        };
        LineCol {
            line: line as u32 + 1,
            col: offset - self.line_starts[line] + 1,
        }
    }

    /// The byte offset at which 1-based `line` starts, if it exists.
    pub fn line_start(&self, line: u32) -> Option<u32> {
        self.line_starts.get(line as usize - 1).copied()
    }

    /// Number of lines in the file (a trailing newline does not add a line).
    pub fn line_count(&self) -> usize {
        if self
            .text
            .as_bytes()
            .last()
            .map(|&b| b == b'\n')
            .unwrap_or(false)
        {
            self.line_starts.len() - 1
        } else {
            self.line_starts.len()
        }
    }

    /// The text covered by `span` (which must lie within this file).
    pub fn slice(&self, span: Span) -> &str {
        &self.text[span.start as usize..span.end as usize]
    }

    /// The full text of the 1-based `line`, without the trailing newline.
    pub fn line_text(&self, line: u32) -> &str {
        let start = self.line_starts[line as usize - 1] as usize;
        let end = self
            .line_starts
            .get(line as usize)
            .map(|&e| e as usize)
            .unwrap_or(self.text.len());
        self.text[start..end].trim_end_matches('\n')
    }
}

/// Registry of all source files participating in one patching session:
/// the semantic patch itself plus every target file.
#[derive(Debug, Default)]
pub struct SourceMap {
    files: Vec<SourceFile>,
}

impl SourceMap {
    /// Create an empty source map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a file and return its handle.
    pub fn add_file(&mut self, name: impl Into<String>, text: impl Into<Arc<str>>) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files
            .push(SourceFile::new(id, name.into(), text.into()));
        id
    }

    /// Look up a registered file.
    ///
    /// # Panics
    /// Panics if `id` was produced by a different `SourceMap`.
    pub fn file(&self, id: FileId) -> &SourceFile {
        &self.files[id.0 as usize]
    }

    /// All registered files, in registration order.
    pub fn files(&self) -> &[SourceFile] {
        &self.files
    }

    /// Render a span as `name:line:col` for error messages.
    pub fn describe(&self, id: FileId, span: Span) -> String {
        let f = self.file(id);
        let lc = f.line_col(span.start);
        format!("{}:{}:{}", f.name, lc.line, lc.col)
    }
}

impl fmt::Display for SourceFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_basic() {
        let mut sm = SourceMap::new();
        let id = sm.add_file("a.c", "int x;\nint y;\n");
        let f = sm.file(id);
        assert_eq!(f.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(f.line_col(4), LineCol { line: 1, col: 5 });
        assert_eq!(f.line_col(7), LineCol { line: 2, col: 1 });
        assert_eq!(f.line_col(13), LineCol { line: 2, col: 7 });
    }

    #[test]
    fn line_col_clamps_past_eof() {
        let mut sm = SourceMap::new();
        let id = sm.add_file("a.c", "ab");
        assert_eq!(sm.file(id).line_col(100), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn line_text_and_count() {
        let mut sm = SourceMap::new();
        let id = sm.add_file("a.c", "one\ntwo\nthree");
        let f = sm.file(id);
        assert_eq!(f.line_count(), 3);
        assert_eq!(f.line_text(1), "one");
        assert_eq!(f.line_text(2), "two");
        assert_eq!(f.line_text(3), "three");
    }

    #[test]
    fn line_count_trailing_newline() {
        let mut sm = SourceMap::new();
        let id = sm.add_file("a.c", "one\ntwo\n");
        assert_eq!(sm.file(id).line_count(), 2);
    }

    #[test]
    fn slice_roundtrip() {
        let mut sm = SourceMap::new();
        let id = sm.add_file("a.c", "hello world");
        let span = Span::new(6, 11);
        assert_eq!(sm.file(id).slice(span), "world");
    }

    #[test]
    fn describe_formats_position() {
        let mut sm = SourceMap::new();
        let id = sm.add_file("dir/a.c", "x\nyz");
        assert_eq!(sm.describe(id, Span::new(2, 3)), "dir/a.c:2:1");
    }

    #[test]
    fn empty_file() {
        let mut sm = SourceMap::new();
        let id = sm.add_file("e.c", "");
        let f = sm.file(id);
        assert_eq!(f.line_count(), 1);
        assert_eq!(f.line_col(0), LineCol { line: 1, col: 1 });
    }

    #[test]
    fn multiple_files_independent_ids() {
        let mut sm = SourceMap::new();
        let a = sm.add_file("a.c", "aaa");
        let b = sm.add_file("b.c", "bbb");
        assert_ne!(a, b);
        assert_eq!(sm.file(a).text.as_ref(), "aaa");
        assert_eq!(sm.file(b).text.as_ref(), "bbb");
        assert_eq!(sm.files().len(), 2);
    }
}
