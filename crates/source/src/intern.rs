//! String interning: `Symbol` is a 32-bit handle to a deduplicated
//! string, so identifier/type-name equality on the matcher hot path is
//! one integer compare instead of a byte-wise `String` compare, and AST
//! nodes stop owning heap strings entirely.
//!
//! The interner is process-global and sharded: a symbol must mean the
//! same string on the pattern side (compiled once per run) and the file
//! side (parsed per worker thread), and a global table is the only
//! arrangement in which the two can mint equal handles without
//! rendezvous. [`Interner::global`] hands out the `Arc` that per-run
//! state (e.g. `cocci_core`'s `FileContext`) threads along; `Symbol`
//! convenience methods ([`Symbol::intern`], [`Symbol::as_str`]) go
//! through the same instance.
//!
//! Interned strings are leaked (`Box::leak`) so `resolve` returns
//! `&'static str` without holding a lock across the call — the set of
//! distinct identifiers in a run is bounded by the corpus vocabulary,
//! which for a batch tool is an acceptable, strictly-bounded leak.
//!
//! Hashing is FNV-1a: identifier-sized keys are where FNV beats SipHash
//! by the widest margin, and interning needs no DoS hardening (the
//! attacker would be the code being patched, whose worst case is a slow
//! lint of itself).
//!
//! `Symbol`'s derived `Ord` is by numeric id — creation order, not
//! lexicographic. Sort by [`Symbol::as_str`] at any user-visible
//! boundary (diagnostics, JSON) that was previously alphabetical.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, Hasher};
use std::sync::{Arc, OnceLock, RwLock};

const SHARD_BITS: u32 = 4;
const SHARDS: usize = 1 << SHARD_BITS;

/// A handle to an interned string. Copy, 4 bytes, equality ≡ string
/// equality (two `Symbol`s from the global interner are equal iff the
/// strings they intern are equal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Intern `s` in the global interner.
    pub fn intern(s: &str) -> Symbol {
        Interner::global().intern(s)
    }

    /// The interned string. O(1) plus a shard read-lock.
    pub fn as_str(self) -> &'static str {
        Interner::global().resolve(self)
    }

    /// The raw id (shard in the low bits, slot above). For
    /// diagnostics/probes only — ids are not stable across processes.
    pub fn to_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&Symbol> for Symbol {
    fn from(s: &Symbol) -> Symbol {
        *s
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// FNV-1a, 64-bit.
#[derive(Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf29ce484222325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        self.0 = h;
    }
}

/// `BuildHasher` for FNV-1a — usable anywhere a `HashMap` wants a
/// cheap, deterministic hash of short keys.
#[derive(Clone, Default)]
pub struct FnvBuild;

impl BuildHasher for FnvBuild {
    type Hasher = Fnv1a;

    fn build_hasher(&self) -> Fnv1a {
        Fnv1a::default()
    }
}

fn fnv1a_str(s: &str) -> u64 {
    let mut h = Fnv1a::default();
    h.write(s.as_bytes());
    h.finish()
}

#[derive(Default)]
struct Shard {
    map: HashMap<&'static str, u32, FnvBuild>,
    strings: Vec<&'static str>,
}

/// The deduplicating string table behind [`Symbol`]. Sharded 16 ways so
/// parser threads interning disjoint vocabularies rarely contend; the
/// shard index rides in the low bits of the symbol so `resolve` needs
/// no search.
pub struct Interner {
    shards: [RwLock<Shard>; SHARDS],
}

impl Interner {
    fn new() -> Interner {
        Interner {
            shards: std::array::from_fn(|_| RwLock::new(Shard::default())),
        }
    }

    /// The process-global interner all `Symbol`s resolve against.
    pub fn global() -> Arc<Interner> {
        static GLOBAL: OnceLock<Arc<Interner>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(Interner::new())))
    }

    /// Intern `s`, returning its stable handle. Repeat calls with equal
    /// strings return equal symbols; the common already-interned case
    /// takes only a shard read-lock.
    pub fn intern(&self, s: &str) -> Symbol {
        let shard_ix = (fnv1a_str(s) >> (64 - SHARD_BITS)) as usize;
        let shard = &self.shards[shard_ix];
        if let Some(&slot) = shard.read().unwrap().map.get(s) {
            return Symbol(slot << SHARD_BITS | shard_ix as u32);
        }
        let mut w = shard.write().unwrap();
        // Re-check: another thread may have interned between the locks.
        if let Some(&slot) = w.map.get(s) {
            return Symbol(slot << SHARD_BITS | shard_ix as u32);
        }
        let slot = u32::try_from(w.strings.len()).expect("interner shard overflow");
        assert!(slot < 1 << (32 - SHARD_BITS), "interner shard overflow");
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        w.strings.push(leaked);
        w.map.insert(leaked, slot);
        Symbol(slot << SHARD_BITS | shard_ix as u32)
    }

    /// The string `sym` was minted from.
    pub fn resolve(&self, sym: Symbol) -> &'static str {
        let shard_ix = (sym.0 & (SHARDS as u32 - 1)) as usize;
        let slot = (sym.0 >> SHARD_BITS) as usize;
        self.shards[shard_ix].read().unwrap().strings[slot]
    }

    /// Number of distinct strings interned so far (all shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap().strings.len())
            .sum()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Intern `s` in the global interner (free-function form).
pub fn intern(s: &str) -> Symbol {
    Symbol::intern(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_dedup() {
        let a = Symbol::intern("launch_kernel");
        let b = Symbol::intern("launch_kernel");
        let c = Symbol::intern("launch_kerneL");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "launch_kernel");
        assert_eq!(c.as_str(), "launch_kerneL");
    }

    #[test]
    fn empty_and_unicode() {
        assert_eq!(Symbol::intern("").as_str(), "");
        let s = "naïve_π";
        assert_eq!(Symbol::intern(s).as_str(), s);
    }

    #[test]
    fn str_comparisons() {
        let s = Symbol::intern("omp_get_num_threads");
        assert_eq!(s, "omp_get_num_threads");
        assert!(s != "omp_get_thread_num");
        assert_eq!(s.to_string(), "omp_get_num_threads");
    }

    #[test]
    fn global_is_shared() {
        let i1 = Interner::global();
        let i2 = Interner::global();
        let a = i1.intern("shared_across_handles");
        let b = i2.intern("shared_across_handles");
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&i1, &i2));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let words: Vec<String> = (0..256).map(|i| format!("concurrent_word_{i}")).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let words = words.clone();
                std::thread::spawn(move || {
                    words.iter().map(|w| Symbol::intern(w)).collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for row in &all[1..] {
            assert_eq!(row, &all[0]);
        }
        for (w, s) in words.iter().zip(&all[0]) {
            assert_eq!(s.as_str(), w.as_str());
        }
    }
}
