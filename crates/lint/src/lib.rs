//! `cocci-lint`: load-time static analysis for semantic-patch rules.
//!
//! A semantic patch is a program, and like any program it can be subtly
//! wrong in ways that parse and even compile: a metavariable that is
//! declared but never used, a `+` line referencing a metavariable no
//! `-`/context line can ever bind, an `=~` constraint whose regex cannot
//! match any identifier, a `depends on` edge pointing at a rule that runs
//! *later*. Each of these either silently weakens the rule or guarantees
//! a run-time failure on every file of a large corpus — exactly the kind
//! of defect worth refusing **before** a multi-hour scan starts walking.
//!
//! This crate analyses parsed [`SemanticPatch`]es (pre-compile, so even
//! patches the engine refuses to load can be linted) and emits structured
//! diagnostics as [`cocci_core::findings::Finding`]s, which reuse the
//! engine's text/JSON/SARIF writers. Eight lint classes with stable ids:
//!
//! | id    | default | meaning                                              |
//! |-------|---------|------------------------------------------------------|
//! | SPL01 | warn    | metavariable declared but never used                  |
//! | SPL02 | deny    | `+`-only metavariable can never be bound; script input references an unknown rule or undeclared metavariable |
//! | SPL03 | deny    | `=~` regex can never match an identifier (or is invalid) |
//! | SPL04 | deny    | `depends on` names an unknown rule or one that runs at/after the dependent (a cycle under in-order execution) |
//! | SPL05 | warn    | disjunction branch is dead (duplicate, or shadowed by an earlier catch-all metavariable branch) |
//! | SPL06 | warn    | rule exports no prefilter atoms — the literal sieve cannot prune any file for it |
//! | SPL07 | deny    | `when exists`/`when strict` dots cannot lower to a CFG-routable pattern (the engine refuses such patches at load) |
//! | SPL08 | warn    | rule duplicates an earlier rule's normalized pattern under a second id |
//!
//! SPL07 is calibrated to *exactly* predict `CompiledPatch::compile`'s
//! quantified-dots refusal: it fires iff compilation would fail with the
//! "CFG-routable" error (property-tested in `tests/tests/lint.rs`).
//!
//! `spatch lint` exposes the analysis as a subcommand; scan and apply run
//! it automatically at load (`--no-lint` opts out) and refuse deny-level
//! diagnostics before the corpus walk.

use std::collections::HashMap;
use std::fmt;

use cocci_cast::render::{render_expr, render_stmt};
use cocci_cast::{visit, DotsQuant, Expr, Item, Stmt};
use cocci_core::findings::{Finding, SarifRule};
use cocci_core::{flowmatch, CompiledRuleSet};
use cocci_smpl::prefilter;
use cocci_smpl::{
    Annot, Constraint, DepExpr, FreshPart, MetaDeclKind, Pattern, Rule, SemanticPatch,
    TransformRule,
};

/// How a lint class is enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintLevel {
    /// Suppressed entirely — the diagnostic is not even reported.
    Allow,
    /// Reported, does not fail the run.
    Warn,
    /// Reported and fails the run (exit 1 from `spatch lint`; scan/apply
    /// refuse the patch before walking the corpus).
    Deny,
}

impl fmt::Display for LintLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LintLevel::Allow => "allow",
            LintLevel::Warn => "warn",
            LintLevel::Deny => "deny",
        })
    }
}

/// Descriptor of one lint class.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// Stable id (`SPL01` … `SPL08`).
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line summary (used as the SARIF rule description).
    pub summary: &'static str,
    /// Default enforcement level.
    pub default: LintLevel,
}

/// All lint classes, ascending by id.
pub const LINTS: [LintInfo; 8] = [
    LintInfo {
        id: "SPL01",
        name: "unused-metavar",
        summary: "metavariable is declared but never used",
        default: LintLevel::Warn,
    },
    LintInfo {
        id: "SPL02",
        name: "unbindable-metavar",
        summary: "metavariable used in `+` context can never be bound, or a script \
                  input references an unknown rule or undeclared metavariable",
        default: LintLevel::Deny,
    },
    LintInfo {
        id: "SPL03",
        name: "unsatisfiable-regex",
        summary: "`=~` constraint can never match an identifier",
        default: LintLevel::Deny,
    },
    LintInfo {
        id: "SPL04",
        name: "bad-dependency",
        summary: "`depends on` names an unknown rule or one that runs at/after the \
                  dependent rule",
        default: LintLevel::Deny,
    },
    LintInfo {
        id: "SPL05",
        name: "subsumed-branch",
        summary: "disjunction branch is dead: duplicate of, or shadowed by, an \
                  earlier branch",
        default: LintLevel::Warn,
    },
    LintInfo {
        id: "SPL06",
        name: "no-prefilter",
        summary: "rule has no prefilter atoms; the literal sieve cannot prune any \
                  corpus file for it",
        default: LintLevel::Warn,
    },
    LintInfo {
        id: "SPL07",
        name: "unroutable-dots",
        summary: "`when exists`/`when strict` dots cannot lower to a CFG-routable \
                  pattern; the engine refuses the patch at load",
        default: LintLevel::Deny,
    },
    LintInfo {
        id: "SPL08",
        name: "duplicate-rule",
        summary: "rule duplicates an earlier rule's normalized pattern under a \
                  second id",
        default: LintLevel::Warn,
    },
];

/// Look up a lint descriptor by id (`SPL03`) or name (`unsatisfiable-regex`),
/// case-insensitively.
pub fn lint_info(key: &str) -> Option<&'static LintInfo> {
    LINTS
        .iter()
        .find(|l| l.id.eq_ignore_ascii_case(key) || l.name.eq_ignore_ascii_case(key))
}

/// Per-run enforcement configuration: the default level of each class,
/// overridden per id by `--deny/--warn/--allow`.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    overrides: HashMap<&'static str, LintLevel>,
}

impl LintConfig {
    /// Override the level of one lint, addressed by id or name.
    pub fn set(&mut self, key: &str, level: LintLevel) -> Result<(), String> {
        match lint_info(key) {
            Some(info) => {
                self.overrides.insert(info.id, level);
                Ok(())
            }
            None => Err(format!(
                "unknown lint `{key}` (known: SPL01..SPL08, or names like `unused-metavar`)"
            )),
        }
    }

    /// Effective level of the lint with this id.
    pub fn level(&self, id: &str) -> LintLevel {
        match self.overrides.get(id) {
            Some(l) => *l,
            None => lint_info(id).map_or(LintLevel::Warn, |i| i.default),
        }
    }
}

/// One diagnostic: a lint id, its effective level, and the rendered
/// finding (pointing into the rule source file, lint id as the rule name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Stable class id (`SPL01` … `SPL08`).
    pub id: &'static str,
    /// Effective level under the run's [`LintConfig`].
    pub level: LintLevel,
    /// The diagnostic in the engine's common findings shape.
    pub finding: Finding,
}

/// Whether any diagnostic in `lints` is deny-level.
pub fn has_deny(lints: &[Lint]) -> bool {
    lints.iter().any(|l| l.level == LintLevel::Deny)
}

/// SARIF rule descriptors for every lint class not allowed-away under
/// `cfg` (deny maps to SARIF `error`, warn to `warning`).
pub fn sarif_rules(cfg: &LintConfig) -> Vec<SarifRule> {
    LINTS
        .iter()
        .filter(|l| cfg.level(l.id) != LintLevel::Allow)
        .map(|l| SarifRule {
            id: l.id.to_string(),
            level: match cfg.level(l.id) {
                LintLevel::Deny => "error",
                _ => "warning",
            },
            description: format!("{}: {}", l.name, l.summary),
        })
        .collect()
}

fn is_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Word-boundary occurrences of `needle` in `hay`.
fn word_count(hay: &str, needle: &str) -> usize {
    if needle.is_empty() {
        return 0;
    }
    let bytes = hay.as_bytes();
    let mut n = 0;
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let abs = start + pos;
        let end = abs + needle.len();
        let before_ok = abs == 0 || !is_word(bytes[abs - 1]);
        let after_ok = end >= bytes.len() || !is_word(bytes[end]);
        if before_ok && after_ok {
            n += 1;
        }
        start = abs + 1;
    }
    n
}

/// 1-based line of the rule's `@…@` header in `text` (best effort: the
/// first line starting with `@` whose first header word is `name`).
fn rule_header_line(text: Option<&str>, name: Option<&str>) -> u32 {
    let (Some(text), Some(name)) = (text, name) else {
        return 1;
    };
    for (i, line) in text.lines().enumerate() {
        let lt = line.trim_start();
        if let Some(rest) = lt.strip_prefix('@') {
            let rest = rest.trim_start();
            if let Some(after) = rest.strip_prefix(name) {
                if !after.as_bytes().first().copied().is_some_and(is_word) {
                    return (i + 1) as u32;
                }
            }
        }
    }
    1
}

fn mk(id: &'static str, level: LintLevel, source: &str, line: u32, message: String) -> Lint {
    Lint {
        id,
        level,
        finding: Finding {
            path: source.to_string(),
            line,
            col: 1,
            end_line: line,
            end_col: 1,
            rule: id.to_string(),
            message,
            bindings: Vec::new(),
        },
    }
}

/// Collect `(name, negated)` leaves of a dependency expression.
fn dep_leaves<'a>(d: &'a DepExpr, out: &mut Vec<(&'a str, bool)>) {
    match d {
        DepExpr::Rule(n) => out.push((n, false)),
        DepExpr::Not(n) => out.push((n, true)),
        DepExpr::And(cs) | DepExpr::Or(cs) => {
            for c in cs {
                dep_leaves(c, out);
            }
        }
    }
}

/// Append a dependency expression to `sig` in a canonical prefix form.
fn push_dep(sig: &mut String, d: &DepExpr) {
    match d {
        DepExpr::Rule(n) => {
            sig.push('r');
            sig.push_str(n);
        }
        DepExpr::Not(n) => {
            sig.push('!');
            sig.push_str(n);
        }
        DepExpr::And(cs) | DepExpr::Or(cs) => {
            sig.push(if matches!(d, DepExpr::And(_)) {
                '&'
            } else {
                '/'
            });
            sig.push('(');
            for c in cs {
                push_dep(sig, c);
                sig.push(',');
            }
            sig.push(')');
        }
    }
}

/// Append one metavariable declaration to `sig`.
fn push_decl(sig: &mut String, m: &cocci_smpl::MetaDecl) {
    sig.push_str(match &m.kind {
        MetaDeclKind::Type => "ty",
        MetaDeclKind::Identifier => "id",
        MetaDeclKind::FreshIdentifier(_) => "fresh",
        MetaDeclKind::Expression => "exp",
        MetaDeclKind::ExpressionList => "expl",
        MetaDeclKind::Statement => "stm",
        MetaDeclKind::StatementList => "stml",
        MetaDeclKind::ParameterList => "parl",
        MetaDeclKind::Constant => "const",
        MetaDeclKind::Function => "fn",
        MetaDeclKind::Symbol => "sym",
        MetaDeclKind::Position => "pos",
        MetaDeclKind::PragmaInfo => "pragma",
    });
    if let MetaDeclKind::FreshIdentifier(parts) = &m.kind {
        sig.push('(');
        for p in parts {
            match p {
                FreshPart::Lit(s) => {
                    sig.push('"');
                    sig.push_str(s);
                }
                FreshPart::MetaRef(n) => {
                    sig.push('$');
                    sig.push_str(n);
                }
            }
        }
        sig.push(')');
    }
    sig.push(' ');
    sig.push_str(&m.name);
    match &m.constraint {
        None => {}
        Some(Constraint::Regex(re)) => {
            sig.push_str("=~");
            sig.push_str(re);
        }
        Some(Constraint::NotRegex(re)) => {
            sig.push_str("!~");
            sig.push_str(re);
        }
        Some(Constraint::Set(vals)) => {
            sig.push_str("={");
            for v in vals {
                sig.push_str(v);
                sig.push(',');
            }
            sig.push('}');
        }
    }
    if let Some(from) = &m.inherited_from {
        sig.push('<');
        sig.push_str(from);
    }
    sig.push(';');
}

/// Normalized signature of a patch's transform rules: per-line annotation
/// plus the line's token texts (so indentation and intra-line spacing do
/// not matter), together with metavariable and dependency shape. Two
/// rules with equal signatures match and rewrite identically. `None` when
/// the patch has no transform rule (nothing to deduplicate).
pub fn patch_signature(patch: &SemanticPatch) -> Option<String> {
    let mut sig = String::with_capacity(256);
    let mut transforms = 0usize;
    for rule in &patch.rules {
        if let Rule::Transform(t) = rule {
            transforms += 1;
            if transforms > 1 {
                sig.push('\u{1f}');
            }
            if let Some(d) = &t.depends {
                push_dep(&mut sig, d);
            }
            sig.push('|');
            for m in &t.metavars {
                push_decl(&mut sig, m);
            }
            sig.push('|');
            for l in &t.body.lines {
                sig.push(match l.annot {
                    Annot::Context => ' ',
                    Annot::Minus => '-',
                    Annot::Plus => '+',
                });
                if l.tokens.is_empty() {
                    // Lines that do not lex in isolation (comment-only
                    // `+` lines): fall back to collapsed text.
                    for w in l.text.split_whitespace() {
                        sig.push(' ');
                        sig.push_str(w);
                    }
                } else {
                    for tok in &l.tokens {
                        sig.push(' ');
                        sig.push_str(tok.text(&t.body.raw));
                    }
                }
                sig.push('\n');
            }
        }
    }
    if transforms == 0 {
        None
    } else {
        Some(sig)
    }
}

/// Lint one parsed patch (classes SPL01–SPL07). `source` names the rule
/// file in diagnostics; `text` (the raw patch source, when available)
/// anchors findings at rule header lines. Allowed-away classes are
/// omitted from the result.
pub fn lint_patch(
    patch: &SemanticPatch,
    source: &str,
    text: Option<&str>,
    cfg: &LintConfig,
) -> Vec<Lint> {
    lint_patch_impl(patch, source, text, cfg, None)
}

/// Worker behind [`lint_patch`] and [`lint_ruleset`]. `atoms_empty`, when
/// given, is aligned with `patch.rules` and answers SPL06's "does this
/// transform rule export prefilter atoms?" from the compile-time cache,
/// sparing a second pattern walk per rule.
fn lint_patch_impl(
    patch: &SemanticPatch,
    source: &str,
    text: Option<&str>,
    cfg: &LintConfig,
    atoms_empty: Option<&[Option<bool>]>,
) -> Vec<Lint> {
    let mut out = Vec::new();
    let mut emit = |id: &'static str, line: u32, message: String| {
        let level = cfg.level(id);
        if level != LintLevel::Allow {
            out.push(mk(id, level, source, line, message));
        }
    };

    // Metavariables referenced outside their declaring rule: inherited
    // declarations of later rules and script inputs. A reference
    // anywhere counts as "used" for SPL01.
    let mut external: Vec<(&str, &str)> = Vec::new();
    for rule in &patch.rules {
        match rule {
            Rule::Transform(t) => {
                for m in &t.metavars {
                    if let Some(from) = &m.inherited_from {
                        external.push((from.as_str(), m.name.as_str()));
                    }
                }
            }
            Rule::Script(s) => {
                for (_, from, var) in &s.inputs {
                    external.push((from.as_str(), var.as_str()));
                }
            }
            _ => {}
        }
    }

    // First occurrence index of every named rule, for SPL04 ordering.
    // Built only when some rule actually declares a dependency.
    let mut name_index: HashMap<&str, usize> = HashMap::new();
    let any_depends = patch.rules.iter().any(|rule| match rule {
        Rule::Transform(t) => t.depends.is_some(),
        Rule::Script(s) => s.depends.is_some(),
        _ => false,
    });
    if any_depends {
        for (i, rule) in patch.rules.iter().enumerate() {
            if let Some(n) = rule.name() {
                name_index.entry(n).or_insert(i);
            }
        }
    }

    // Metavariables each named earlier rule exports — mirror of the
    // compile-time registry, for the SPL02 script-input check. Only
    // populated when a script rule exists to consume it.
    let mut exported: HashMap<&str, Vec<&str>> = HashMap::new();
    let any_script = patch.rules.iter().any(|r| matches!(r, Rule::Script(_)));

    for (ri, rule) in patch.rules.iter().enumerate() {
        let rn = rule.name().unwrap_or("<anonymous>");
        let line = rule_header_line(text, rule.name());

        // SPL04: dependency edges, for transform and script rules alike.
        let depends = match rule {
            Rule::Transform(t) => t.depends.as_ref(),
            Rule::Script(s) => s.depends.as_ref(),
            _ => None,
        };
        if let Some(dep) = depends {
            let mut leaves = Vec::new();
            dep_leaves(dep, &mut leaves);
            for (n, negated) in leaves {
                match name_index.get(n) {
                    None => emit(
                        "SPL04",
                        line,
                        format!("rule {rn}: depends on unknown rule `{n}`"),
                    ),
                    Some(&di) if di >= ri && !negated => emit(
                        "SPL04",
                        line,
                        format!(
                            "rule {rn}: depends on rule `{n}` which runs at or after it — \
                             rules execute in order, so this dependency can never be \
                             satisfied"
                        ),
                    ),
                    Some(&di) if di >= ri && negated => emit(
                        "SPL04",
                        line,
                        format!(
                            "rule {rn}: `depends on !{n}` references rule `{n}` which runs \
                             at or after it — the negation is always true (dead constraint)"
                        ),
                    ),
                    Some(_) => {}
                }
            }
        }

        match rule {
            Rule::Transform(t) => {
                let no_atoms = atoms_empty.and_then(|cache| cache.get(ri).copied().flatten());
                lint_transform(t, rn, line, &external, no_atoms, &mut emit);
                if any_script {
                    if let Some(name) = &t.name {
                        exported
                            .entry(name.as_str())
                            .or_default()
                            .extend(t.metavars.iter().map(|m| m.name.as_str()));
                    }
                }
            }
            Rule::Script(s) => {
                // SPL02 (script half): inputs must resolve to an earlier
                // rule's exports — the same condition the compiler
                // refuses on; linting reports it pre-compile.
                for (local, from, var) in &s.inputs {
                    match exported.get(from.as_str()) {
                        None => emit(
                            "SPL02",
                            line,
                            format!(
                                "script rule {rn}: input `{local} << {from}.{var}` references \
                                 unknown rule `{from}` (no earlier rule has that name)"
                            ),
                        ),
                        Some(vars) if !vars.contains(&var.as_str()) => emit(
                            "SPL02",
                            line,
                            format!(
                                "script rule {rn}: input `{local} << {from}.{var}` references \
                                 undeclared metavariable `{var}` of rule `{from}`"
                            ),
                        ),
                        Some(_) => {}
                    }
                }
                if let Some(name) = &s.name {
                    exported
                        .entry(name.as_str())
                        .or_default()
                        .extend(s.outputs.iter().map(String::as_str));
                }
            }
            _ => {}
        }
    }
    out
}

/// Classes SPL01/SPL02/SPL03/SPL05/SPL06/SPL07 for one transform rule.
/// `no_atoms`, when known from the compile-time cache, answers SPL06
/// without re-walking the pattern.
fn lint_transform(
    t: &TransformRule,
    rn: &str,
    line: u32,
    external: &[(&str, &str)],
    no_atoms: Option<bool>,
    emit: &mut impl FnMut(&'static str, u32, String),
) {
    // Occurrence counts over body lines in one pass, split by
    // bindability: context and `-` lines can bind a metavariable, `+`
    // lines only consume.
    let count_in = |name: &str| -> (usize, usize) {
        let mut bindable = 0;
        let mut plus = 0;
        for l in &t.body.lines {
            let n = word_count(&l.text, name);
            if l.annot == Annot::Plus {
                plus += n;
            } else {
                bindable += n;
            }
        }
        (bindable, plus)
    };

    for m in &t.metavars {
        let (bindable, plus) = count_in(&m.name);
        let fresh_ref = t.metavars.iter().any(|o| {
            matches!(&o.kind, MetaDeclKind::FreshIdentifier(parts)
                if parts.iter().any(|p| matches!(p, FreshPart::MetaRef(r) if r == &m.name)))
        });
        let used_externally = t
            .name
            .as_deref()
            .is_some_and(|n| external.contains(&(n, m.name.as_str())));

        // SPL01: declared but never referenced — not in the body, not by
        // a fresh-identifier template, not inherited by a later rule or
        // script.
        if bindable + plus == 0 && !fresh_ref && !used_externally {
            emit(
                "SPL01",
                line,
                format!(
                    "rule {rn}: metavariable `{}` is declared but never used",
                    m.name
                ),
            );
        }

        // SPL02: referenced only from `+` lines, so no match can ever
        // bind it — substitution fails on every match at run time.
        // Fresh identifiers are synthesized, `symbol` is a literal name,
        // positions bind at match sites, and inherited metavariables are
        // bound by their source rule; none of those need a local binding
        // occurrence.
        let needs_binding = !matches!(
            m.kind,
            MetaDeclKind::FreshIdentifier(_) | MetaDeclKind::Symbol | MetaDeclKind::Position
        ) && m.inherited_from.is_none();
        if needs_binding && plus > 0 && bindable == 0 {
            emit(
                "SPL02",
                line,
                format!(
                    "rule {rn}: metavariable `{}` appears only in `+` lines and can never \
                     be bound — substitution would fail on every match",
                    m.name
                ),
            );
        }

        // SPL03: an `=~` constraint on an identifier-valued metavariable
        // whose regex admits no string over the identifier alphabet
        // `[A-Za-z0-9_]` — the rule parses and compiles but can never
        // match. Invalid regexes are reported here too (the compiler
        // would refuse them later with less context).
        let identifier_valued = matches!(
            m.kind,
            MetaDeclKind::Identifier | MetaDeclKind::Function | MetaDeclKind::Symbol
        );
        match &m.constraint {
            Some(Constraint::Regex(re)) | Some(Constraint::NotRegex(re)) => {
                match cocci_rex::Regex::new(re) {
                    Err(err) => emit(
                        "SPL03",
                        line,
                        format!("rule {rn}: invalid regex on `{}`: {err}", m.name),
                    ),
                    Ok(compiled)
                        if identifier_valued
                            && matches!(m.constraint, Some(Constraint::Regex(_)))
                            && !compiled.can_match_identifier() =>
                    {
                        emit(
                            "SPL03",
                            line,
                            format!(
                                "rule {rn}: `=~ \"{re}\"` on `{}` can never match — identifiers \
                                 draw only on [A-Za-z0-9_]",
                                m.name
                            ),
                        );
                    }
                    Ok(_) => {}
                }
            }
            _ => {}
        }
    }

    // SPL05: dead disjunction branches.
    lint_disjunctions(t, rn, line, emit);

    // SPL06: no guaranteed literal atoms — the corpus prefilter cannot
    // prune a single file for this rule, forcing a parse of everything.
    // Worth knowing before pointing the rule at a million-file tree.
    if no_atoms.unwrap_or_else(|| prefilter::rule_atoms(t).is_empty()) {
        emit(
            "SPL06",
            line,
            format!(
                "rule {rn}: no prefilter atoms — the literal sieve cannot prune any corpus \
                 file for this rule; every file will be parsed"
            ),
        );
    }

    // SPL07: quantified dots the engine cannot route through the CFG.
    // Mirrors the compile-time refusal exactly: compilation computes a
    // flow lowering only for `Pattern::Stmts` with top-level dots, and
    // refuses when any explicit quantifier exists without one.
    let quants = t.body.pattern.statement_dots_quants();
    if quants.iter().any(|q| *q != DotsQuant::Default) {
        let routable = match &t.body.pattern {
            Pattern::Stmts(stmts) => {
                t.body.pattern.has_statement_dots() && flowmatch::lower_pattern(stmts).is_some()
            }
            _ => false,
        };
        if !routable {
            emit(
                "SPL07",
                line,
                format!(
                    "rule {rn}: `when exists` / `when strict` need a CFG-routable pattern \
                     (simple statement anchors around top-level dots) — the engine refuses \
                     this patch at load"
                ),
            );
        }
    }
}

/// SPL05 over every disjunction in the rule's pattern: a branch whose
/// normalized rendering equals an earlier branch's is a dead arm, and a
/// bare `expression`-metavariable branch shadows everything after it.
fn lint_disjunctions(
    t: &TransformRule,
    rn: &str,
    line: u32,
    emit: &mut impl FnMut(&'static str, u32, String),
) {
    let mut disjs: Vec<&Expr> = Vec::new();
    let mut groups: Vec<&Vec<Vec<Stmt>>> = Vec::new();

    fn collect<'a>(
        stmts: &'a [Stmt],
        disjs: &mut Vec<&'a Expr>,
        groups: &mut Vec<&'a Vec<Vec<Stmt>>>,
    ) {
        for s in stmts {
            visit::walk_stmt(s, &mut |st| {
                if let Stmt::PatGroup {
                    conj: false,
                    branches,
                    ..
                } = st
                {
                    groups.push(branches);
                }
            });
            visit::deep_stmt_exprs(s, &mut |e| {
                if matches!(e, Expr::Disj { .. }) {
                    disjs.push(e);
                }
            });
        }
    }

    match &t.body.pattern {
        Pattern::Expr(e) => visit::walk_expr(e, &mut |sub| {
            if matches!(sub, Expr::Disj { .. }) {
                disjs.push(sub);
            }
        }),
        Pattern::Stmts(stmts) => collect(stmts, &mut disjs, &mut groups),
        Pattern::Items(items) => {
            for it in items {
                if let Item::Function(f) = it {
                    collect(&f.body.stmts, &mut disjs, &mut groups);
                }
            }
        }
    }

    for d in disjs {
        let Expr::Disj { branches, .. } = d else {
            continue;
        };
        let mut seen: Vec<(String, usize)> = Vec::new();
        for (bi, b) in branches.iter().enumerate() {
            let norm = render_expr(b);
            if let Some((_, fi)) = seen.iter().find(|(s, _)| *s == norm) {
                emit(
                    "SPL05",
                    line,
                    format!(
                        "rule {rn}: disjunction branch {} duplicates branch {} (dead arm)",
                        bi + 1,
                        fi + 1
                    ),
                );
            } else {
                seen.push((norm, bi));
            }
        }
        // A bare `expression` metavariable matches any expression; every
        // branch after it is unreachable.
        if let Some(ci) = branches.iter().position(|b| {
            b.unparen().as_ident().is_some_and(|id| {
                t.metavar(id.name.as_str())
                    .is_some_and(|m| m.kind == MetaDeclKind::Expression)
            })
        }) {
            if ci + 1 < branches.len() {
                emit(
                    "SPL05",
                    line,
                    format!(
                        "rule {rn}: disjunction branch {} is a bare `expression` \
                         metavariable that matches anything — the {} later branch(es) \
                         are dead",
                        ci + 1,
                        branches.len() - ci - 1
                    ),
                );
            }
        }
    }

    for branches in groups {
        let mut seen: Vec<(String, usize)> = Vec::new();
        for (bi, b) in branches.iter().enumerate() {
            let norm = b.iter().map(render_stmt).collect::<Vec<_>>().join(" ");
            if let Some((_, fi)) = seen.iter().find(|(s, _)| *s == norm) {
                emit(
                    "SPL05",
                    line,
                    format!(
                        "rule {rn}: pattern-group branch {} duplicates branch {} (dead arm)",
                        bi + 1,
                        fi + 1
                    ),
                );
            } else {
                seen.push((norm, bi));
            }
        }
    }
}

/// SPL08 across a set of rules: the same normalized pattern signature
/// registered under two different ids. Entries are `(id, source, patch)`
/// in scan order; the first occurrence wins, later ones are flagged.
pub fn lint_duplicates(entries: &[(&str, &str, &SemanticPatch)], cfg: &LintConfig) -> Vec<Lint> {
    let level = cfg.level("SPL08");
    if level == LintLevel::Allow {
        return Vec::new();
    }
    let mut seen: HashMap<String, usize> = HashMap::new();
    let mut out = Vec::new();
    for (i, (id, source, patch)) in entries.iter().enumerate() {
        let Some(sig) = patch_signature(patch) else {
            continue;
        };
        match seen.get(&sig) {
            Some(&fi) => {
                let (first_id, first_src, _) = entries[fi];
                if first_id != *id {
                    out.push(mk(
                        "SPL08",
                        level,
                        source,
                        1,
                        format!(
                            "rule `{id}` duplicates rule `{first_id}` ({first_src}): \
                             identical normalized pattern under a second id"
                        ),
                    ));
                }
            }
            None => {
                seen.insert(sig, i);
            }
        }
    }
    out
}

/// Lint every rule of a compiled scan set (SPL01–SPL07 per rule, SPL08
/// across the set). Used by scan-mode lint-at-load, where the patches
/// are already parsed and compiled.
pub fn lint_ruleset(set: &CompiledRuleSet, cfg: &LintConfig) -> Vec<Lint> {
    let mut out = Vec::new();
    for r in &set.rules {
        // SPL06 reads the prefilter atoms the compiler already extracted
        // instead of re-walking each rule's pattern.
        let atoms_empty: Vec<Option<bool>> = r
            .compiled
            .rules
            .iter()
            .map(|cr| cr.atoms.as_ref().map(|a| a.is_empty()))
            .collect();
        out.extend(lint_patch_impl(
            &r.compiled.patch,
            &r.meta.source,
            None,
            cfg,
            Some(&atoms_empty),
        ));
    }
    let entries: Vec<(&str, &str, &SemanticPatch)> = set
        .rules
        .iter()
        .map(|r| {
            (
                r.meta.id.as_str(),
                r.meta.source.as_str(),
                &r.compiled.patch,
            )
        })
        .collect();
    out.extend(lint_duplicates(&entries, cfg));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocci_smpl::parse_semantic_patch;

    fn lint_src(src: &str) -> Vec<Lint> {
        let patch = parse_semantic_patch(src).expect("fixture parses");
        lint_patch(&patch, "fixture.cocci", Some(src), &LintConfig::default())
    }

    fn ids(lints: &[Lint]) -> Vec<&'static str> {
        lints.iter().map(|l| l.id).collect()
    }

    #[test]
    fn spl01_unused_metavar_fires() {
        let l = lint_src(
            "@r@\nexpression e;\nidentifier dead;\n@@\n- old_probe(e);\n+ new_probe(e);\n",
        );
        assert_eq!(ids(&l), vec!["SPL01"]);
        assert_eq!(l[0].level, LintLevel::Warn);
        assert!(
            l[0].finding.message.contains("`dead`"),
            "{}",
            l[0].finding.message
        );
        assert_eq!(l[0].finding.path, "fixture.cocci");
        assert_eq!(l[0].finding.line, 1, "anchored at the @r@ header");
        assert_eq!(l[0].finding.rule, "SPL01");
    }

    #[test]
    fn spl01_clean_when_all_metavars_used() {
        let l = lint_src("@r@\nexpression e;\n@@\n- old_probe(e);\n+ new_probe(e);\n");
        assert!(l.is_empty(), "{l:?}");
    }

    #[test]
    fn spl01_fresh_template_reference_counts_as_use() {
        // `f` appears in the body; `g` only on a `+` line, but it is a
        // fresh identifier (synthesized, not bound) — no SPL01, no SPL02.
        let l = lint_src(
            "@r@\nidentifier f;\nfresh identifier g = \"wrap_\" ## f;\n@@\n- reg(f);\n+ reg(g);\n",
        );
        assert!(l.is_empty(), "{l:?}");
    }

    #[test]
    fn spl01_script_inheritance_counts_as_use() {
        // `p` is consumed by the script even though the transform body
        // also uses it; removing the body use entirely still keeps the
        // declaration referenced (via `a.p`), so no SPL01 for `p`.
        let src = "@a@\nidentifier f;\nposition p;\n@@\n- probe(f)@p;\n\n\
                   @script:python s@\nwhere << a.p;\n@@\nprint(where)\n";
        let l = lint_src(src);
        assert!(l.is_empty(), "{l:?}");
    }

    #[test]
    fn spl02_plus_only_metavar_fires() {
        let l = lint_src("@r@\nidentifier g;\n@@\n- old_call();\n+ g();\n");
        assert_eq!(ids(&l), vec!["SPL02"]);
        assert_eq!(l[0].level, LintLevel::Deny);
        assert!(l[0].finding.message.contains("can never be bound"));
    }

    #[test]
    fn spl02_clean_when_bound_in_minus() {
        let l = lint_src("@r@\nidentifier g;\n@@\n- old_call(g);\n+ new_call(g);\n");
        assert!(l.is_empty(), "{l:?}");
    }

    #[test]
    fn spl02_script_input_unknown_rule_fires() {
        let src = "@a@\nexpression e;\n@@\n- f(e);\n\n\
                   @script:python s@\nx << nope.e;\n@@\nprint(x)\n";
        let l = lint_src(src);
        assert_eq!(ids(&l), vec!["SPL02"]);
        assert!(l[0].finding.message.contains("unknown rule `nope`"));
    }

    #[test]
    fn spl02_script_input_undeclared_metavar_fires() {
        let src = "@a@\nexpression e;\n@@\n- f(e);\n\n\
                   @script:python s@\nx << a.missing;\n@@\nprint(x)\n";
        let l = lint_src(src);
        assert_eq!(ids(&l), vec!["SPL02"]);
        assert!(l[0]
            .finding
            .message
            .contains("undeclared metavariable `missing`"));
    }

    #[test]
    fn spl03_unsatisfiable_regex_fires() {
        let l = lint_src("@r@\nidentifier f =~ \"foo-bar\";\n@@\n- f();\n");
        assert_eq!(ids(&l), vec!["SPL03"]);
        assert_eq!(l[0].level, LintLevel::Deny);
        assert!(l[0].finding.message.contains("can never match"));
    }

    #[test]
    fn spl03_satisfiable_regex_clean() {
        let l = lint_src("@r@\nidentifier f =~ \"^probe_\";\n@@\n- f();\n");
        assert!(l.is_empty(), "{l:?}");
    }

    #[test]
    fn spl03_expression_regex_not_flagged() {
        // `=~` on an expression binds rendered text that may contain
        // characters outside the identifier alphabet — out of scope.
        let l = lint_src("@r@\nexpression e =~ \"foo-bar\";\n@@\n- probe(e);\n");
        assert!(l.is_empty(), "{l:?}");
    }

    #[test]
    fn spl04_unknown_dependency_fires() {
        let src = "@a@\nexpression e;\n@@\n- f(e);\n\n\
                   @b depends on nope@\nexpression x;\n@@\n- g(x);\n";
        let l = lint_src(src);
        assert_eq!(ids(&l), vec!["SPL04"]);
        assert!(l[0].finding.message.contains("unknown rule `nope`"));
        assert_eq!(l[0].finding.line, 6, "anchored at the @b …@ header");
    }

    #[test]
    fn spl04_forward_dependency_fires() {
        let src = "@a depends on b@\nexpression e;\n@@\n- f(e);\n\n\
                   @b@\nexpression x;\n@@\n- g(x);\n";
        let l = lint_src(src);
        assert_eq!(ids(&l), vec!["SPL04"]);
        assert!(l[0].finding.message.contains("never be satisfied"));
    }

    #[test]
    fn spl04_backward_dependency_clean() {
        let src = "@a@\nexpression e;\n@@\n- f(e);\n\n\
                   @b depends on a@\nexpression x;\n@@\n- g(x);\n";
        let l = lint_src(src);
        assert!(l.is_empty(), "{l:?}");
    }

    #[test]
    fn spl05_duplicate_branch_fires() {
        let l = lint_src("@r@\nexpression e;\n@@\n- \\( foo(e) \\| foo(e) \\)\n+ bar(e);\n");
        assert_eq!(ids(&l), vec!["SPL05"]);
        assert!(l[0].finding.message.contains("duplicates branch 1"));
    }

    #[test]
    fn spl05_catchall_metavar_branch_fires() {
        let l = lint_src("@r@\nexpression e;\n@@\n- probe(\\( e \\| foo() \\));\n");
        assert!(ids(&l).contains(&"SPL05"), "{l:?}");
        let m = &l.iter().find(|l| l.id == "SPL05").unwrap().finding.message;
        assert!(m.contains("matches anything"), "{m}");
    }

    #[test]
    fn spl05_distinct_branches_clean() {
        // (wrapped in `probe(…)` so the rule keeps a guaranteed prefilter
        // atom — a bare disjunction would also fire SPL06)
        let l = lint_src("@r@\nexpression e;\n@@\n- probe(\\( foo(e) \\| bar(e) \\));\n");
        assert!(l.is_empty(), "{l:?}");
    }

    #[test]
    fn spl06_no_atoms_fires() {
        let l = lint_src("@r@\nexpression e1;\nexpression e2;\n@@\n- e1 = e2;\n");
        assert_eq!(ids(&l), vec!["SPL06"]);
        assert_eq!(l[0].level, LintLevel::Warn);
    }

    #[test]
    fn spl06_literal_atom_clean() {
        let l = lint_src("@r@\nexpression e1;\nexpression e2;\n@@\n- probe(e1, e2);\n");
        assert!(l.is_empty(), "{l:?}");
    }

    #[test]
    fn spl07_unroutable_quantified_dots_fires() {
        // `when exists` on dots nested in a sub-block: only the tree
        // matcher would visit them, so the engine refuses at compile —
        // and the lint predicts it.
        let src = "@r@\n@@\n- probe_begin();\n- { ... when exists }\n";
        let patch = parse_semantic_patch(src).expect("parses");
        let l = lint_patch(&patch, "f.cocci", Some(src), &LintConfig::default());
        assert!(ids(&l).contains(&"SPL07"), "{l:?}");
        assert!(cocci_core::CompiledPatch::compile(&patch).is_err());
    }

    #[test]
    fn spl07_routable_quantified_dots_clean() {
        let src = "@@\nexpression b;\n@@\n- probe_begin(b);\n+ probe_enter(b);\n\
                   ... when exists\nprobe_end(b);\n";
        let patch = parse_semantic_patch(src).expect("parses");
        let l = lint_patch(&patch, "f.cocci", Some(src), &LintConfig::default());
        assert!(!ids(&l).contains(&"SPL07"), "{l:?}");
        assert!(cocci_core::CompiledPatch::compile(&patch).is_ok());
    }

    #[test]
    fn spl08_duplicate_rules_fire() {
        let a = parse_semantic_patch("@@\nexpression e;\n@@\n- f(e);\n+ g(e);\n").unwrap();
        let b = parse_semantic_patch("@@\nexpression e;\n@@\n-   f( e );\n+   g( e );\n").unwrap();
        let c = parse_semantic_patch("@@\nexpression e;\n@@\n- h(e);\n+ g(e);\n").unwrap();
        let cfg = LintConfig::default();
        let entries = vec![
            ("first", "rules/first.cocci", &a),
            ("second", "rules/second.cocci", &b),
            ("third", "rules/third.cocci", &c),
        ];
        let l = lint_duplicates(&entries, &cfg);
        assert_eq!(ids(&l), vec!["SPL08"]);
        assert!(l[0].finding.message.contains("duplicates rule `first`"));
        assert_eq!(l[0].finding.path, "rules/second.cocci");
    }

    #[test]
    fn spl08_same_id_not_flagged() {
        // The same id twice is a *load* error (duplicate id), not a lint;
        // and re-listing one patch under one id is not a duplicate.
        let a = parse_semantic_patch("@@\nexpression e;\n@@\n- f(e);\n+ g(e);\n").unwrap();
        let entries = vec![("only", "a.cocci", &a), ("only", "b.cocci", &a)];
        assert!(lint_duplicates(&entries, &LintConfig::default()).is_empty());
    }

    #[test]
    fn config_overrides_and_allow_suppression() {
        let mut cfg = LintConfig::default();
        cfg.set("SPL01", LintLevel::Deny).unwrap();
        cfg.set("unsatisfiable-regex", LintLevel::Allow).unwrap();
        assert!(cfg.set("SPL99", LintLevel::Deny).is_err());
        let src = "@r@\nidentifier dead;\nidentifier f =~ \"foo-bar\";\n@@\n- f();\n";
        let patch = parse_semantic_patch(src).unwrap();
        let l = lint_patch(&patch, "x.cocci", Some(src), &cfg);
        // SPL03 allowed away; SPL01 upgraded to deny.
        assert_eq!(ids(&l), vec!["SPL01"]);
        assert_eq!(l[0].level, LintLevel::Deny);
        assert!(has_deny(&l));
    }

    #[test]
    fn sarif_rule_descriptors_follow_config() {
        let mut cfg = LintConfig::default();
        cfg.set("SPL06", LintLevel::Allow).unwrap();
        let rules = sarif_rules(&cfg);
        assert_eq!(rules.len(), LINTS.len() - 1);
        assert!(!rules.iter().any(|r| r.id == "SPL06"));
        let spl02 = rules.iter().find(|r| r.id == "SPL02").unwrap();
        assert_eq!(spl02.level, "error");
        let spl01 = rules.iter().find(|r| r.id == "SPL01").unwrap();
        assert_eq!(spl01.level, "warning");
    }

    #[test]
    fn lint_ruleset_covers_rules_and_duplicates() {
        let set = CompiledRuleSet::from_sources(&[
            (
                "rules/a.cocci".to_string(),
                "a".to_string(),
                "@r@\nexpression e;\nidentifier dead;\n@@\n- f(e);\n".to_string(),
            ),
            (
                "rules/b.cocci".to_string(),
                "b".to_string(),
                "@r@\nexpression e;\nidentifier dead;\n@@\n- f(e);\n".to_string(),
            ),
        ])
        .expect("compiles");
        let l = lint_ruleset(&set, &LintConfig::default());
        let mut got = ids(&l);
        got.sort_unstable();
        assert_eq!(got, vec!["SPL01", "SPL01", "SPL08"]);
    }

    #[test]
    fn word_count_respects_boundaries() {
        assert_eq!(word_count("f(e, ee, e2, e)", "e"), 2);
        assert_eq!(word_count("probe(x)@p;", "p"), 1);
        assert_eq!(word_count("", "e"), 0);
        assert_eq!(word_count("eee", "e"), 0);
    }

    #[test]
    fn lint_info_lookup_by_id_and_name() {
        assert_eq!(lint_info("spl07").unwrap().id, "SPL07");
        assert_eq!(lint_info("duplicate-rule").unwrap().id, "SPL08");
        assert!(lint_info("SPL42").is_none());
    }
}
