//! Low-overhead tracing for the engine: phase spans, run counters, and
//! Chrome trace-event output.
//!
//! The probe API is designed so an *untraced* run pays (almost) nothing:
//! every probe starts with one relaxed atomic load of a global enable
//! flag, and when the flag is off no clock is read, no allocation is
//! made, and the returned [`SpanGuard`] drops without side effects.
//!
//! When enabled, each thread appends [`SpanEvent`]s to its own
//! fixed-capacity ring buffer (oldest events are overwritten and counted
//! as dropped), registered in a process-wide registry so [`collect`] can
//! aggregate across threads after the workers are gone. Counters are
//! plain global atomics. Timestamps are nanoseconds since a process-wide
//! monotonic epoch, so spans from different threads order correctly in
//! one timeline.
//!
//! Output paths:
//! - [`TraceData::write_chrome`] emits Chrome trace-event JSON (one lane
//!   per recorded thread) viewable in Perfetto or about:tracing.
//! - [`TraceData::phase_totals`] / [`TraceData::detail_totals`] feed the
//!   `--stats` table and the report `metrics` block.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Pipeline phases a span can belong to. The string names are the
/// stable identifiers used in trace JSON, the `--stats` table, and the
/// report `metrics` block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Corpus directory walk + file read.
    Walk,
    /// Literal-atom prefilter (per file, or per file x rule set in scan).
    Prefilter,
    /// Lex + parse of a translation unit (the cast parser).
    Parse,
    /// Per-function CFG construction.
    CfgBuild,
    /// Tree (AST) pattern matching.
    TreeMatch,
    /// CTL/flow matching of dots rules over CFGs.
    FlowMatch,
    /// Computing replacement edits from witnesses.
    Rewrite,
    /// Applying edits to the source text / diff rendering.
    Render,
    /// Findings + report generation and serialization.
    Report,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 9] = [
        Phase::Walk,
        Phase::Prefilter,
        Phase::Parse,
        Phase::CfgBuild,
        Phase::TreeMatch,
        Phase::FlowMatch,
        Phase::Rewrite,
        Phase::Render,
        Phase::Report,
    ];

    /// Stable identifier used in every output format.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Walk => "walk",
            Phase::Prefilter => "prefilter",
            Phase::Parse => "parse",
            Phase::CfgBuild => "cfg_build",
            Phase::TreeMatch => "tree_match",
            Phase::FlowMatch => "flow_match",
            Phase::Rewrite => "rewrite",
            Phase::Render => "render",
            Phase::Report => "report",
        }
    }
}

/// Run counters. Like phases, the string names are stable identifiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// Files skipped entirely by the prefilter.
    FilesPruned,
    /// Translation units actually lexed + parsed.
    FilesParsed,
    /// Parses served from a `FileContext` memo instead of re-parsing.
    ParseCacheHits,
    /// Witnesses forked at binding-incompatible join points.
    WitnessesForked,
    /// Files quarantined by the per-file time budget.
    Timeouts,
    /// Matcher panics caught and isolated.
    Panics,
    /// Findings dropped by inline `spatch-ignore` suppressions.
    Suppressions,
    /// (file x rule) match attempts started (the explain funnel's top).
    Attempts,
    /// Attempts ended by the literal-atom prefilter.
    KillPrefilter,
    /// Attempts ended because the target file would not parse.
    KillParse,
    /// Attempts whose pattern anchor hit nothing in the file.
    KillAnchor,
    /// Attempts whose every anchor hit died in a dots gap walk
    /// (quantifier unsatisfied, escaped node, `when !=` kill).
    KillGapWalk,
    /// Attempts killed by witness-group binding conflicts.
    KillBindings,
    /// Attempts whose edits conflicted and were discarded.
    KillEditConflict,
    /// Attempts whose every finding was suppressed inline.
    KillSuppressed,
    /// Attempts ended by the per-file time budget.
    KillTimeout,
}

const COUNTER_COUNT: usize = 16;

impl Counter {
    /// Every counter.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::FilesPruned,
        Counter::FilesParsed,
        Counter::ParseCacheHits,
        Counter::WitnessesForked,
        Counter::Timeouts,
        Counter::Panics,
        Counter::Suppressions,
        Counter::Attempts,
        Counter::KillPrefilter,
        Counter::KillParse,
        Counter::KillAnchor,
        Counter::KillGapWalk,
        Counter::KillBindings,
        Counter::KillEditConflict,
        Counter::KillSuppressed,
        Counter::KillTimeout,
    ];

    /// Stable identifier used in every output format.
    pub fn name(self) -> &'static str {
        match self {
            Counter::FilesPruned => "files_pruned",
            Counter::FilesParsed => "files_parsed",
            Counter::ParseCacheHits => "parse_cache_hits",
            Counter::WitnessesForked => "witnesses_forked",
            Counter::Timeouts => "timeouts",
            Counter::Panics => "panics",
            Counter::Suppressions => "suppressions",
            Counter::Attempts => "attempts",
            Counter::KillPrefilter => "kill_prefilter",
            Counter::KillParse => "kill_parse",
            Counter::KillAnchor => "kill_anchor",
            Counter::KillGapWalk => "kill_gap_walk",
            Counter::KillBindings => "kill_bindings",
            Counter::KillEditConflict => "kill_edit_conflict",
            Counter::KillSuppressed => "kill_suppressed",
            Counter::KillTimeout => "kill_timeout",
        }
    }
}

/// One recorded span: a phase interval on some thread, optionally
/// labelled with a detail string (rule id, usually).
#[derive(Clone, Debug)]
pub struct SpanEvent {
    pub phase: Phase,
    pub detail: Option<Box<str>>,
    /// Nanoseconds since the process trace epoch.
    pub start_ns: u64,
    pub dur_ns: u64,
}

/// One recorded instant: a point-in-time marker on some thread (a kill
/// site in the explain engine, typically), rendered as a Chrome "i"
/// event so Perfetto shows where attempts die on the timeline.
#[derive(Clone, Debug)]
pub struct InstantEvent {
    /// Stable marker name (a kill-stage identifier, usually).
    pub name: &'static str,
    /// Free-form context (`file: rule`, absent atoms, ...).
    pub detail: Option<Box<str>>,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
}

/// Spans kept per thread before the oldest are overwritten.
pub const RING_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
#[allow(clippy::declare_interior_mutable_const)]
const COUNTER_ZERO: AtomicU64 = AtomicU64::new(0);
static COUNTERS: [AtomicU64; COUNTER_COUNT] = [COUNTER_ZERO; COUNTER_COUNT];

struct RingInner {
    buf: Vec<SpanEvent>,
    /// Next overwrite position once the buffer is full.
    next: usize,
    dropped: u64,
    /// Instant markers, ring-buffered like the spans.
    instants: Vec<InstantEvent>,
    instants_next: usize,
    instants_dropped: u64,
}

struct Ring {
    tid: u64,
    name: String,
    inner: Mutex<RingInner>,
}

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

thread_local! {
    static LOCAL_RING: RefCell<Option<Arc<Ring>>> = const { RefCell::new(None) };
}

fn with_local_ring(f: impl FnOnce(&mut RingInner)) {
    LOCAL_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let ring = slot.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("thread-{tid}"));
            let ring = Arc::new(Ring {
                tid,
                name,
                inner: Mutex::new(RingInner {
                    buf: Vec::new(),
                    next: 0,
                    dropped: 0,
                    instants: Vec::new(),
                    instants_next: 0,
                    instants_dropped: 0,
                }),
            });
            registry().lock().unwrap().push(Arc::clone(&ring));
            ring
        });
        let mut inner = ring.inner.lock().unwrap();
        f(&mut inner);
    });
}

fn record(event: SpanEvent) {
    with_local_ring(|inner| {
        if inner.buf.len() < RING_CAPACITY {
            inner.buf.push(event);
        } else {
            let at = inner.next;
            inner.buf[at] = event;
            inner.next = (at + 1) % RING_CAPACITY;
            inner.dropped += 1;
        }
    });
}

fn record_instant(event: InstantEvent) {
    with_local_ring(|inner| {
        if inner.instants.len() < RING_CAPACITY {
            inner.instants.push(event);
        } else {
            let at = inner.instants_next;
            inner.instants[at] = event;
            inner.instants_next = (at + 1) % RING_CAPACITY;
            inner.instants_dropped += 1;
        }
    });
}

/// Record an instant marker (a Chrome "i" event) on the current
/// thread's lane. A no-op when tracing is disabled.
#[inline]
pub fn instant(name: &'static str, detail: Option<&str>) {
    if !is_enabled() {
        return;
    }
    record_instant(InstantEvent {
        name,
        detail: detail.map(Into::into),
        ts_ns: now_ns(),
    });
}

/// Turn tracing on or off for the whole process. Enabling also fixes
/// the trace epoch if this is the first trace call.
pub fn set_enabled(enabled: bool) {
    if enabled {
        epoch();
    }
    ENABLED.store(enabled, Ordering::SeqCst);
}

/// Is tracing currently on? One relaxed load; this is the check every
/// probe performs first.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clear all recorded spans and counters (the enable flag and thread
/// registrations are kept). Lets one process run several traced runs.
pub fn reset() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    for ring in registry().lock().unwrap().iter() {
        let mut inner = ring.inner.lock().unwrap();
        inner.buf.clear();
        inner.next = 0;
        inner.dropped = 0;
        inner.instants.clear();
        inner.instants_next = 0;
        inner.instants_dropped = 0;
    }
}

/// RAII span: records a [`SpanEvent`] for `phase` from construction to
/// drop. A no-op (no clock read) when tracing is disabled.
#[must_use = "a span measures until it is dropped"]
pub struct SpanGuard {
    active: Option<(Phase, Option<Box<str>>, u64)>,
}

impl SpanGuard {
    /// A guard that records nothing; useful for conditional spans.
    pub fn disabled() -> SpanGuard {
        SpanGuard { active: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((phase, detail, start_ns)) = self.active.take() {
            let dur_ns = now_ns().saturating_sub(start_ns);
            record(SpanEvent {
                phase,
                detail,
                start_ns,
                dur_ns,
            });
        }
    }
}

/// Start an unlabelled span for `phase`.
#[inline]
pub fn span(phase: Phase) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard::disabled();
    }
    SpanGuard {
        active: Some((phase, None, now_ns())),
    }
}

/// Start a span for `phase` labelled with `detail` (typically a rule id).
#[inline]
pub fn span_with(phase: Phase, detail: &str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard::disabled();
    }
    SpanGuard {
        active: Some((phase, Some(detail.into()), now_ns())),
    }
}

/// Add `n` to a counter. A no-op when tracing is disabled.
#[inline]
pub fn count(counter: Counter, n: u64) {
    if is_enabled() {
        COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Current value of a counter.
pub fn counter_value(counter: Counter) -> u64 {
    COUNTERS[counter as usize].load(Ordering::Relaxed)
}

/// All spans recorded by one thread.
#[derive(Clone, Debug)]
pub struct Lane {
    pub tid: u64,
    pub name: String,
    /// In recording order (oldest surviving span first).
    pub spans: Vec<SpanEvent>,
    /// Spans overwritten because the ring filled up.
    pub dropped: u64,
    /// Instant markers, oldest surviving first.
    pub instants: Vec<InstantEvent>,
    /// Instants overwritten because their ring filled up.
    pub instants_dropped: u64,
}

/// Aggregate time + count for one phase or one detail label.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Total {
    pub count: u64,
    pub total_ns: u64,
}

/// A cross-thread snapshot of everything recorded so far.
#[derive(Clone, Debug, Default)]
pub struct TraceData {
    pub lanes: Vec<Lane>,
    /// Counter name -> value, for every counter (zeros included).
    pub counters: BTreeMap<&'static str, u64>,
}

/// Snapshot all rings and counters. Threads may keep recording after
/// the snapshot; call this after the run's workers have finished.
pub fn collect() -> TraceData {
    let mut lanes = Vec::new();
    for ring in registry().lock().unwrap().iter() {
        let inner = ring.inner.lock().unwrap();
        let mut spans = Vec::with_capacity(inner.buf.len());
        if inner.buf.len() == RING_CAPACITY {
            spans.extend_from_slice(&inner.buf[inner.next..]);
            spans.extend_from_slice(&inner.buf[..inner.next]);
        } else {
            spans.extend_from_slice(&inner.buf);
        }
        let mut instants = Vec::with_capacity(inner.instants.len());
        if inner.instants.len() == RING_CAPACITY {
            instants.extend_from_slice(&inner.instants[inner.instants_next..]);
            instants.extend_from_slice(&inner.instants[..inner.instants_next]);
        } else {
            instants.extend_from_slice(&inner.instants);
        }
        lanes.push(Lane {
            tid: ring.tid,
            name: ring.name.clone(),
            spans,
            dropped: inner.dropped,
            instants,
            instants_dropped: inner.instants_dropped,
        });
    }
    lanes.sort_by_key(|l| l.tid);
    let mut counters = BTreeMap::new();
    for c in Counter::ALL {
        counters.insert(c.name(), counter_value(c));
    }
    TraceData { lanes, counters }
}

impl TraceData {
    /// Spans recorded across all lanes.
    pub fn span_count(&self) -> usize {
        self.lanes.iter().map(|l| l.spans.len()).sum()
    }

    /// Spans lost to ring wraparound across all lanes.
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped).sum()
    }

    /// Per-phase totals across all lanes, keyed by [`Phase::name`].
    pub fn phase_totals(&self) -> BTreeMap<&'static str, Total> {
        let mut totals: BTreeMap<&'static str, Total> = BTreeMap::new();
        for lane in &self.lanes {
            for span in &lane.spans {
                let t = totals.entry(span.phase.name()).or_default();
                t.count += 1;
                t.total_ns += span.dur_ns;
            }
        }
        totals
    }

    /// Totals for labelled spans, keyed by detail string (rule id),
    /// summed across phases and lanes.
    pub fn detail_totals(&self) -> BTreeMap<String, Total> {
        let mut totals: BTreeMap<String, Total> = BTreeMap::new();
        for lane in &self.lanes {
            for span in &lane.spans {
                if let Some(detail) = &span.detail {
                    let t = totals.entry(detail.to_string()).or_default();
                    t.count += 1;
                    t.total_ns += span.dur_ns;
                }
            }
        }
        totals
    }

    /// Write Chrome trace-event JSON: metadata events naming the process
    /// and each lane (with a numeric `thread_sort_index` so Perfetto
    /// orders `worker-10` after `worker-2` instead of lexicographically),
    /// one complete ("X") event per span, and one instant ("i") event per
    /// recorded marker. Open the file in Perfetto (ui.perfetto.dev) or
    /// chrome://tracing.
    pub fn write_chrome<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(w, "{{\"traceEvents\":[")?;
        let mut first = true;
        let sep = |w: &mut W, first: &mut bool| -> io::Result<()> {
            if *first {
                *first = false;
                Ok(())
            } else {
                writeln!(w, ",")
            }
        };
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"spatch\"}}}}"
        )?;
        for lane in &self.lanes {
            sep(w, &mut first)?;
            write!(
                w,
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                lane.tid,
                json_string(&lane.name)
            )?;
            sep(w, &mut first)?;
            write!(
                w,
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{}}}}}",
                lane.tid,
                lane_sort_index(&lane.name, lane.tid)
            )?;
        }
        for lane in &self.lanes {
            for span in &lane.spans {
                sep(w, &mut first)?;
                write!(
                    w,
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
                     \"name\":\"{}\"",
                    lane.tid,
                    span.start_ns as f64 / 1000.0,
                    span.dur_ns as f64 / 1000.0,
                    span.phase.name()
                )?;
                if let Some(detail) = &span.detail {
                    write!(w, ",\"args\":{{\"detail\":{}}}", json_string(detail))?;
                }
                write!(w, "}}")?;
            }
            for inst in &lane.instants {
                sep(w, &mut first)?;
                write!(
                    w,
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"s\":\"t\",\
                     \"name\":\"{}\"",
                    lane.tid,
                    inst.ts_ns as f64 / 1000.0,
                    inst.name
                )?;
                if let Some(detail) = &inst.detail {
                    write!(w, ",\"args\":{{\"detail\":{}}}", json_string(detail))?;
                }
                write!(w, "}}")?;
            }
        }
        writeln!(w, "\n]}}")?;
        Ok(())
    }
}

/// Numeric Perfetto sort key for a lane: `worker-10` sorts after
/// `worker-2` by its trailing number; unnumbered lanes (the main
/// thread) come first, and ties fall back to registration order.
fn lane_sort_index(name: &str, tid: u64) -> u64 {
    match name.rsplit('-').next().and_then(|n| n.parse::<u64>().ok()) {
        // +1 keeps index 0 free for unnumbered lanes; the multiplier
        // leaves room for the tid tiebreak without collisions.
        Some(n) => (n + 1) * 1_000 + tid,
        None => tid,
    }
}

/// JSON-escape a string (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global; serialize the tests that touch it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let _g = lock();
        set_enabled(false);
        reset();
        {
            let _s = span(Phase::Parse);
            count(Counter::FilesParsed, 3);
        }
        let data = collect();
        assert_eq!(data.span_count(), 0);
        assert_eq!(data.counters["files_parsed"], 0);
    }

    #[test]
    fn span_nesting_is_preserved() {
        let _g = lock();
        set_enabled(true);
        reset();
        {
            let _outer = span(Phase::TreeMatch);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span_with(Phase::Rewrite, "rule-x");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let data = collect();
        set_enabled(false);
        // Inner drops first, so it is recorded first.
        let spans: Vec<&SpanEvent> = data.lanes.iter().flat_map(|l| &l.spans).collect();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.phase == Phase::Rewrite).unwrap();
        let outer = spans.iter().find(|s| s.phase == Phase::TreeMatch).unwrap();
        assert_eq!(inner.detail.as_deref(), Some("rule-x"));
        // The inner interval lies within the outer interval.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(
            inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns,
            "inner [{} +{}] escapes outer [{} +{}]",
            inner.start_ns,
            inner.dur_ns,
            outer.start_ns,
            outer.dur_ns
        );
    }

    #[test]
    fn ring_buffer_wraps_and_counts_dropped() {
        let _g = lock();
        set_enabled(true);
        reset();
        let extra = 100;
        for i in 0..RING_CAPACITY + extra {
            record(SpanEvent {
                phase: Phase::Parse,
                detail: Some(format!("s{i}").into()),
                start_ns: i as u64,
                dur_ns: 1,
            });
        }
        let data = collect();
        set_enabled(false);
        let lane = data
            .lanes
            .iter()
            .find(|l| !l.spans.is_empty())
            .expect("one lane recorded");
        assert_eq!(lane.spans.len(), RING_CAPACITY);
        assert_eq!(lane.dropped, extra as u64);
        // Oldest surviving span first, newest last.
        assert_eq!(lane.spans[0].start_ns, extra as u64);
        assert_eq!(
            lane.spans.last().unwrap().start_ns,
            (RING_CAPACITY + extra - 1) as u64
        );
        assert_eq!(data.dropped(), extra as u64);
    }

    #[test]
    fn cross_thread_aggregation_sums_lanes() {
        let _g = lock();
        set_enabled(true);
        reset();
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || {
                    for _ in 0..10 {
                        let _s = span_with(Phase::FlowMatch, &format!("rule-{t}"));
                        count(Counter::WitnessesForked, 1);
                    }
                });
            }
        });
        let data = collect();
        set_enabled(false);
        assert_eq!(data.counters["witnesses_forked"], 40);
        let totals = data.phase_totals();
        assert_eq!(totals["flow_match"].count, 40);
        let by_rule = data.detail_totals();
        assert_eq!(by_rule.len(), 4);
        for t in 0..4 {
            assert_eq!(by_rule[&format!("rule-{t}")].count, 10);
        }
        // Four distinct lanes recorded spans.
        let active = data.lanes.iter().filter(|l| !l.spans.is_empty()).count();
        assert_eq!(active, 4);
    }

    #[test]
    fn chrome_output_is_wellformed_and_names_phases() {
        let _g = lock();
        set_enabled(true);
        reset();
        {
            let _a = span(Phase::Walk);
            let _b = span_with(Phase::Report, "quote\"me");
        }
        let data = collect();
        set_enabled(false);
        let mut out = Vec::new();
        data.write_chrome(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
        assert!(text.contains("\"name\":\"walk\""));
        assert!(text.contains("\"name\":\"report\""));
        assert!(text.contains("quote\\\"me"));
        assert!(text.contains("\"thread_name\""));
    }

    #[test]
    fn chrome_metadata_orders_workers_numerically() {
        // Perfetto sorts lanes by thread_sort_index when present;
        // without it, `worker-10` sorts before `worker-2`
        // lexicographically. The emitted metadata must give worker-10
        // the larger sort key.
        let _g = lock();
        set_enabled(true);
        reset();
        for w in [2usize, 10] {
            std::thread::Builder::new()
                .name(format!("worker-{w}"))
                .spawn(|| {
                    let _s = span(Phase::Parse);
                })
                .unwrap()
                .join()
                .unwrap();
        }
        let data = collect();
        set_enabled(false);
        let mut out = Vec::new();
        data.write_chrome(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"process_name\""));
        assert!(text.contains("\"args\":{\"name\":\"spatch\"}"));
        let sort_key = |name: &str| -> u64 {
            let lane = data
                .lanes
                .iter()
                .find(|l| l.name == name)
                .unwrap_or_else(|| panic!("no lane {name}"));
            let marker = format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":",
                lane.tid
            );
            let at = text.find(&marker).expect("sort_index metadata present");
            let rest = &text[at + marker.len()..];
            rest[..rest.find('}').unwrap()].parse().unwrap()
        };
        assert!(
            sort_key("worker-2") < sort_key("worker-10"),
            "worker-10 must sort after worker-2 numerically"
        );
    }

    #[test]
    fn instants_record_and_render_as_i_events() {
        let _g = lock();
        set_enabled(false);
        instant("kill_anchor", Some("ignored while disabled"));
        set_enabled(true);
        reset();
        instant("kill_gap_walk", Some("a.c: rule-x"));
        instant("kill_timeout", None);
        let data = collect();
        set_enabled(false);
        let instants: Vec<&InstantEvent> = data.lanes.iter().flat_map(|l| &l.instants).collect();
        assert_eq!(instants.len(), 2);
        assert_eq!(instants[0].name, "kill_gap_walk");
        assert_eq!(instants[0].detail.as_deref(), Some("a.c: rule-x"));
        let mut out = Vec::new();
        data.write_chrome(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"name\":\"kill_gap_walk\""));
        assert!(!text.contains("kill_anchor"), "disabled instants dropped");
    }

    #[test]
    fn funnel_counters_have_stable_names() {
        assert_eq!(Counter::ALL.len(), COUNTER_COUNT);
        assert_eq!(Counter::Attempts.name(), "attempts");
        assert_eq!(Counter::KillPrefilter.name(), "kill_prefilter");
        assert_eq!(Counter::KillTimeout.name(), "kill_timeout");
        // Names are unique: the counters BTreeMap keys on them.
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTER_COUNT);
    }
}
