//! Path quantification over a CFG — the model-checking core behind
//! statement dots.
//!
//! Coccinelle's defining semantics for `...` between statements is
//! "along **every** control-flow path" — a CTL `AF`-style obligation
//! discharged by model checking over the function's CFG. This module
//! provides the graph side of that check and leaves "does this node
//! match a pattern?" to the caller as node predicates:
//!
//! * [`walk_gap`] — the quantified reachability core. From a set of
//!   start nodes, do the paths reach a *satisfying* node through *clean*
//!   intermediate nodes before falling off the function exit? Under
//!   [`Quant::Forall`] every path must; under [`Quant::Exists`] one is
//!   enough.
//! * [`step_successors`] — successor traversal that sees through the
//!   synthetic join nodes the builder inserts for structure, so "the
//!   next statement along each path" means what a semantic patch means
//!   by it.
//!
//! **Loop cut-points.** Traversal never expands a node twice, so every
//! cycle is explored exactly once and cut where it closes. This is the
//! terminating-loop reading upstream Coccinelle gives `...`: the paths
//! that matter are the acyclic unwindings plus whatever leaves the loop,
//! not the infinite self-loop.

use crate::graph::{Cfg, NodeId, NodeKind};

/// How a gap walk quantifies over control-flow paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quant {
    /// Every path must reach a satisfying node (CTL `AF`-like — the
    /// default semantics of statement dots).
    Forall,
    /// Some path must reach a satisfying node (`EF`-like — the
    /// `when exists` variant).
    Exists,
}

/// Why a gap walk failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapFailure {
    /// A path reached the function exit without meeting a satisfying
    /// node (only possible under [`Quant::Forall`]).
    Escaped,
    /// A path crossed a node the `clean` predicate rejects (a `when !=`
    /// violation) before any satisfying node.
    Unclean(NodeId),
    /// No satisfying node is reachable at all.
    NoHit,
}

/// Walk the gap between two pattern anchors.
///
/// From every node in `starts`, follow successor edges. A node where
/// `sat` holds is a **hit**: the path ends there successfully and the
/// node is reported (paths do not continue *through* hits — dots skip
/// only non-matching code). A non-hit node must be `clean` to be
/// crossed. Reaching the exit node without a hit is an *escape*.
///
/// Under [`Quant::Forall`] an escape or an unclean crossing fails the
/// whole walk; under [`Quant::Exists`] such paths are merely pruned.
/// Either way the distinct first-hit nodes are returned (ordered by
/// node id); an empty hit set is the failure [`GapFailure::NoHit`].
pub fn walk_gap(
    cfg: &Cfg,
    starts: &[NodeId],
    quant: Quant,
    sat: &mut dyn FnMut(NodeId) -> bool,
    clean: &mut dyn FnMut(NodeId) -> bool,
) -> Result<Vec<NodeId>, GapFailure> {
    let mut visited = vec![false; cfg.len()];
    let mut hits: Vec<NodeId> = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    for &s in starts {
        if !visited[s.index()] {
            visited[s.index()] = true;
            stack.push(s);
        }
    }
    while let Some(n) = stack.pop() {
        if sat(n) {
            hits.push(n);
            continue; // hits terminate their path
        }
        if n == cfg.exit() {
            if quant == Quant::Forall {
                return Err(GapFailure::Escaped);
            }
            continue;
        }
        if !clean(n) {
            if quant == Quant::Forall {
                return Err(GapFailure::Unclean(n));
            }
            continue;
        }
        for &(succ, _) in cfg.succs(n) {
            if !visited[succ.index()] {
                visited[succ.index()] = true;
                stack.push(succ);
            }
        }
    }
    if hits.is_empty() {
        return Err(GapFailure::NoHit);
    }
    hits.sort_by_key(|n| n.index());
    Ok(hits)
}

/// The next non-synthetic nodes along each outgoing path of `n`:
/// successors, with the builder's structural [`NodeKind::Join`] nodes
/// traversed transparently (they carry no statement).
pub fn step_successors(cfg: &Cfg, n: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; cfg.len()];
    let mut out = Vec::new();
    let mut stack: Vec<NodeId> = cfg.succs(n).iter().map(|&(s, _)| s).collect();
    while let Some(m) = stack.pop() {
        if seen[m.index()] {
            continue;
        }
        seen[m.index()] = true;
        if cfg.kind(m) == NodeKind::Join {
            stack.extend(cfg.succs(m).iter().map(|&(s, _)| s));
        } else {
            out.push(m);
        }
    }
    out.sort_by_key(|m| m.index());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_cfg;
    use cocci_cast::parser::{parse_translation_unit, NoMeta, ParseOptions};
    use cocci_cast::Item;

    fn cfg_of(src: &str) -> Cfg {
        let tu = parse_translation_unit(src, ParseOptions::c(), &NoMeta).unwrap();
        match &tu.items[0] {
            Item::Function(f) => build_cfg(f),
            other => panic!("{other:?}"),
        }
    }

    fn node_with_label(cfg: &Cfg, needle: &str) -> NodeId {
        cfg.nodes()
            .find(|&n| cfg.label(n).contains(needle))
            .unwrap_or_else(|| panic!("no node labelled {needle}"))
    }

    fn gap(cfg: &Cfg, from: &str, to: &str, quant: Quant) -> Result<Vec<NodeId>, GapFailure> {
        let a = node_with_label(cfg, from);
        let starts: Vec<NodeId> = cfg.succs(a).iter().map(|&(s, _)| s).collect();
        walk_gap(
            cfg,
            &starts,
            quant,
            &mut |n| cfg.label(n).contains(to),
            &mut |_| true,
        )
    }

    #[test]
    fn straightline_gap_reaches() {
        let cfg = cfg_of("void f(void) { a(); mid(); b(); }");
        let hits = gap(&cfg, "a()", "b()", Quant::Forall).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn forall_fails_on_early_return_escape() {
        let cfg = cfg_of("void f(int x) { a(); if (x) return; b(); }");
        assert_eq!(
            gap(&cfg, "a()", "b()", Quant::Forall),
            Err(GapFailure::Escaped)
        );
        // The same gap holds existentially.
        assert_eq!(gap(&cfg, "a()", "b()", Quant::Exists).unwrap().len(), 1);
    }

    #[test]
    fn forall_holds_when_both_branches_hit() {
        let cfg = cfg_of("void f(int x) { a(); if (x) { b(); } else { b(); } done(); }");
        let hits = gap(&cfg, "a()", "b()", Quant::Forall).unwrap();
        assert_eq!(hits.len(), 2, "one hit per branch");
    }

    #[test]
    fn loop_is_cut_and_exit_path_checked() {
        // The zero-iteration path skips the loop body, so a hit that only
        // exists inside the body does not hold on all paths…
        let cfg = cfg_of("void f(int n) { a(); while (n) { b(); } }");
        assert_eq!(
            gap(&cfg, "a()", "b()", Quant::Forall),
            Err(GapFailure::Escaped)
        );
        // …but a hit after the loop does (back edges are cut, not
        // followed forever).
        let cfg2 = cfg_of("void f(int n) { a(); while (n) { step(); } b(); }");
        assert_eq!(gap(&cfg2, "a()", "b()", Quant::Forall).unwrap().len(), 1);
    }

    #[test]
    fn unclean_node_fails_forall_but_prunes_exists() {
        let cfg = cfg_of("void f(int x) { a(); if (x) { bad(); b(); } else { b(); } }");
        let a = node_with_label(&cfg, "a()");
        let starts: Vec<NodeId> = cfg.succs(a).iter().map(|&(s, _)| s).collect();
        let forbidden = node_with_label(&cfg, "bad()");
        let res = walk_gap(
            &cfg,
            &starts,
            Quant::Forall,
            &mut |n| cfg.label(n).contains("b()"),
            &mut |n| n != forbidden,
        );
        assert_eq!(res, Err(GapFailure::Unclean(forbidden)));
        let res = walk_gap(
            &cfg,
            &starts,
            Quant::Exists,
            &mut |n| cfg.label(n).contains("b()"),
            &mut |n| n != forbidden,
        );
        assert_eq!(res.unwrap().len(), 1, "else-branch path survives");
    }

    #[test]
    fn no_hit_anywhere() {
        let cfg = cfg_of("void f(void) { a(); mid(); }");
        assert_eq!(
            gap(&cfg, "a()", "b()", Quant::Exists),
            Err(GapFailure::NoHit)
        );
    }

    #[test]
    fn hits_do_not_leak_through() {
        // First-hit semantics: the path ends at the first satisfying
        // node; the second b() is a separate anchor site, not a hit of
        // this gap.
        let cfg = cfg_of("void f(void) { a(); b(); b(); }");
        let hits = gap(&cfg, "a()", "b()", Quant::Forall).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn step_successors_see_through_joins() {
        let cfg = cfg_of("void f(int x) { if (x) a(); b(); }");
        let a = node_with_label(&cfg, "a()");
        let nexts = step_successors(&cfg, a);
        assert_eq!(nexts.len(), 1);
        assert!(cfg.label(nexts[0]).contains("b()"));
    }
}
