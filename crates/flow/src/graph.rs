//! CFG data structure.

use cocci_source::Span;

/// Index of a node in a [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a CFG node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Synthetic function entry.
    Entry,
    /// Synthetic function exit.
    Exit,
    /// A simple statement (expression, declaration, return, …).
    Stmt,
    /// A branching construct's decision point (`if`, `while`, `for`
    /// condition, `switch` scrutinee).
    Branch,
    /// A pragma or other directive in statement position.
    Directive,
    /// A no-op join point inserted for structure (loop headers after the
    /// body, if-joins).
    Join,
}

/// Classification of a CFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Unconditional fallthrough.
    Seq,
    /// Branch taken (`true` side / matching case).
    True,
    /// Branch not taken (`false` side / default).
    False,
    /// Loop back edge.
    Back,
}

/// An intra-procedural control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    kinds: Vec<NodeKind>,
    labels: Vec<String>,
    spans: Vec<Span>,
    succs: Vec<Vec<(NodeId, EdgeKind)>>,
    preds: Vec<Vec<(NodeId, EdgeKind)>>,
    entry: NodeId,
    exit: NodeId,
}

impl Cfg {
    /// Create a graph containing only entry and exit nodes.
    pub(crate) fn new() -> Self {
        let mut g = Cfg {
            kinds: Vec::new(),
            labels: Vec::new(),
            spans: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
            entry: NodeId(0),
            exit: NodeId(0),
        };
        g.entry = g.add(NodeKind::Entry, "entry", Span::SYNTHETIC);
        g.exit = g.add(NodeKind::Exit, "exit", Span::SYNTHETIC);
        g
    }

    pub(crate) fn add(&mut self, kind: NodeKind, label: impl Into<String>, span: Span) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.labels.push(label.into());
        self.spans.push(span);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    pub(crate) fn edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        if !self.succs[from.index()]
            .iter()
            .any(|&(t, k)| t == to && k == kind)
        {
            self.succs[from.index()].push((to, kind));
            self.preds[to.index()].push((from, kind));
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the graph has only entry/exit.
    pub fn is_empty(&self) -> bool {
        self.kinds.len() <= 2
    }

    /// Entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// Exit node.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// Iterate all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.kinds.len() as u32).map(NodeId)
    }

    /// Kind of `n`.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.index()]
    }

    /// Human-readable label of `n` (statement text, condensed).
    pub fn label(&self, n: NodeId) -> &str {
        &self.labels[n.index()]
    }

    /// Source span of `n`.
    pub fn span(&self, n: NodeId) -> Span {
        self.spans[n.index()]
    }

    /// Successor edges of `n`.
    pub fn succs(&self, n: NodeId) -> &[(NodeId, EdgeKind)] {
        &self.succs[n.index()]
    }

    /// Predecessor edges of `n`.
    pub fn preds(&self, n: NodeId) -> &[(NodeId, EdgeKind)] {
        &self.preds[n.index()]
    }

    /// Reverse postorder from the entry node.
    pub fn reverse_postorder(&self) -> Vec<NodeId> {
        let mut visited = vec![false; self.len()];
        let mut post = Vec::with_capacity(self.len());
        // Iterative DFS with explicit stack of (node, next-succ-index).
        let mut stack: Vec<(NodeId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while let Some(&mut (n, ref mut i)) = stack.last_mut() {
            if *i < self.succs[n.index()].len() {
                let (succ, _) = self.succs[n.index()][*i];
                *i += 1;
                if !visited[succ.index()] {
                    visited[succ.index()] = true;
                    stack.push((succ, 0));
                }
            } else {
                post.push(n);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Graphviz dot rendering (for debugging and documentation).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph cfg {\n");
        for n in self.nodes() {
            s.push_str(&format!(
                "  n{} [label=\"{}\"];\n",
                n.index(),
                self.label(n).replace('"', "\\\"")
            ));
        }
        for n in self.nodes() {
            for &(t, k) in self.succs(n) {
                s.push_str(&format!(
                    "  n{} -> n{} [label=\"{:?}\"];\n",
                    n.index(),
                    t.index(),
                    k
                ));
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_graph_edges() {
        let mut g = Cfg::new();
        let a = g.add(NodeKind::Stmt, "a", Span::SYNTHETIC);
        let b = g.add(NodeKind::Stmt, "b", Span::SYNTHETIC);
        g.edge(g.entry(), a, EdgeKind::Seq);
        g.edge(a, b, EdgeKind::Seq);
        g.edge(b, g.exit(), EdgeKind::Seq);
        assert_eq!(g.succs(a), &[(b, EdgeKind::Seq)]);
        assert_eq!(g.preds(b), &[(a, EdgeKind::Seq)]);
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = Cfg::new();
        let a = g.add(NodeKind::Stmt, "a", Span::SYNTHETIC);
        g.edge(g.entry(), a, EdgeKind::Seq);
        g.edge(g.entry(), a, EdgeKind::Seq);
        assert_eq!(g.succs(g.entry()).len(), 1);
    }

    #[test]
    fn rpo_starts_at_entry() {
        let mut g = Cfg::new();
        let a = g.add(NodeKind::Stmt, "a", Span::SYNTHETIC);
        g.edge(g.entry(), a, EdgeKind::Seq);
        g.edge(a, g.exit(), EdgeKind::Seq);
        let rpo = g.reverse_postorder();
        assert_eq!(rpo[0], g.entry());
    }

    #[test]
    fn dot_output_contains_nodes() {
        let g = Cfg::new();
        let dot = g.to_dot();
        assert!(dot.contains("entry"));
        assert!(dot.contains("exit"));
    }
}
