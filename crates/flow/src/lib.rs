//! `cocci-flow`: intra-procedural control-flow graphs and analyses.
//!
//! A semantic patch is "applied taking into account … the control flow of
//! the target programming language" (paper, §1). This crate provides the
//! control-flow substrate: CFG construction from a
//! [`FunctionDef`](cocci_cast::FunctionDef), plus the analyses the engine
//! and the experiment harness use — reachability, dominators, and natural
//! loop detection (loop headers are where most HPC patches anchor:
//! instrumentation, unroll removal, Kokkos conversion).
//!
//! The path layer adds quantified path traversal: [`walk_gap`] is the
//! CTL-ish core `cocci-core`'s `flowmatch` module uses to give
//! statement dots their faithful "along every control-flow path"
//! semantics, and [`step_successors`] (join-transparent stepping) is
//! the primitive the ROADMAP's compound-anchor/`AX` slices will build
//! on.

mod build;
mod graph;
mod path;

pub use build::build_cfg;
pub use graph::{Cfg, EdgeKind, NodeId, NodeKind};
pub use path::{step_successors, walk_gap, GapFailure, Quant};

use std::collections::VecDeque;

/// Nodes reachable from the entry node.
pub fn reachable(cfg: &Cfg) -> Vec<bool> {
    let mut seen = vec![false; cfg.len()];
    let mut q = VecDeque::new();
    q.push_back(cfg.entry());
    seen[cfg.entry().index()] = true;
    while let Some(n) = q.pop_front() {
        for &(succ, _) in cfg.succs(n) {
            if !seen[succ.index()] {
                seen[succ.index()] = true;
                q.push_back(succ);
            }
        }
    }
    seen
}

/// Immediate dominators (Cooper–Harvey–Kennedy iterative algorithm).
/// `idom[entry] == entry`; unreachable nodes map to `None`.
pub fn dominators(cfg: &Cfg) -> Vec<Option<NodeId>> {
    let n = cfg.len();
    let rpo = cfg.reverse_postorder();
    let mut order = vec![usize::MAX; n];
    for (i, &node) in rpo.iter().enumerate() {
        order[node.index()] = i;
    }
    let mut idom: Vec<Option<NodeId>> = vec![None; n];
    idom[cfg.entry().index()] = Some(cfg.entry());
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<NodeId> = None;
            for &(p, _) in cfg.preds(b) {
                if idom[p.index()].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &order, p, cur),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b.index()] != Some(ni) {
                    idom[b.index()] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

fn intersect(idom: &[Option<NodeId>], order: &[usize], mut a: NodeId, mut b: NodeId) -> NodeId {
    while a != b {
        while order[a.index()] > order[b.index()] {
            a = idom[a.index()].expect("dominator of processed node");
        }
        while order[b.index()] > order[a.index()] {
            b = idom[b.index()].expect("dominator of processed node");
        }
    }
    a
}

/// Does `a` dominate `b`?
pub fn dominates(idom: &[Option<NodeId>], a: NodeId, b: NodeId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur.index()] {
            Some(d) if d != cur => cur = d,
            _ => return false,
        }
    }
}

/// A natural loop: back edge `tail -> header` with the set of nodes in the
/// loop body.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// Loop header node.
    pub header: NodeId,
    /// Source of the back edge.
    pub tail: NodeId,
    /// All nodes in the loop (including header and tail).
    pub body: Vec<NodeId>,
}

/// Find all natural loops (back edges whose target dominates the source).
pub fn natural_loops(cfg: &Cfg) -> Vec<NaturalLoop> {
    let idom = dominators(cfg);
    let reach = reachable(cfg);
    let mut loops = Vec::new();
    for n in cfg.nodes() {
        if !reach[n.index()] {
            continue;
        }
        for &(succ, _) in cfg.succs(n) {
            if dominates(&idom, succ, n) {
                // back edge n -> succ.
                let mut body = vec![succ];
                let mut stack = vec![n];
                let mut in_body = vec![false; cfg.len()];
                in_body[succ.index()] = true;
                while let Some(m) = stack.pop() {
                    if in_body[m.index()] {
                        continue;
                    }
                    in_body[m.index()] = true;
                    body.push(m);
                    for &(p, _) in cfg.preds(m) {
                        stack.push(p);
                    }
                }
                body.sort_by_key(|x| x.index());
                loops.push(NaturalLoop {
                    header: succ,
                    tail: n,
                    body,
                });
            }
        }
    }
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocci_cast::parser::{parse_translation_unit, NoMeta, ParseOptions};
    use cocci_cast::Item;

    fn cfg_of(src: &str) -> Cfg {
        let tu = parse_translation_unit(src, ParseOptions::c(), &NoMeta).unwrap();
        match &tu.items[0] {
            Item::Function(f) => build_cfg(f),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn straightline_cfg() {
        let cfg = cfg_of("void f(void) { a(); b(); c(); }");
        // entry -> a -> b -> c -> exit
        assert!(cfg.len() >= 5);
        let reach = reachable(&cfg);
        assert!(reach.iter().all(|&r| r));
    }

    #[test]
    fn if_join() {
        let cfg = cfg_of("void f(int x) { if (x) a(); else b(); c(); }");
        // the `if` node has two successors
        let cond = cfg
            .nodes()
            .find(|&n| matches!(cfg.kind(n), NodeKind::Branch))
            .unwrap();
        assert_eq!(cfg.succs(cond).len(), 2);
        let loops = natural_loops(&cfg);
        assert!(loops.is_empty());
    }

    #[test]
    fn while_loop_detected() {
        let cfg = cfg_of("void f(int n) { int i = 0; while (i < n) { i++; } done(); }");
        let loops = natural_loops(&cfg);
        assert_eq!(loops.len(), 1);
        assert!(loops[0].body.len() >= 2);
    }

    #[test]
    fn for_loop_detected() {
        let cfg = cfg_of("void f(int n) { for (int i = 0; i < n; ++i) { work(i); } }");
        let loops = natural_loops(&cfg);
        assert_eq!(loops.len(), 1);
    }

    #[test]
    fn nested_loops() {
        let cfg = cfg_of(
            "void f(int n) { for (int i = 0; i < n; ++i) { for (int j = 0; j < n; ++j) { w(i, j); } } }",
        );
        let loops = natural_loops(&cfg);
        assert_eq!(loops.len(), 2);
    }

    #[test]
    fn break_exits_loop() {
        let cfg = cfg_of("void f(int n) { while (1) { if (n) break; g(); } h(); }");
        let reach = reachable(&cfg);
        // h() must be reachable through the break edge.
        let h_reachable = cfg.nodes().any(|n| {
            reach[n.index()]
                && matches!(cfg.kind(n), NodeKind::Stmt)
                && cfg.label(n).contains("h()")
        });
        assert!(h_reachable);
    }

    #[test]
    fn do_while_loops_once_minimum() {
        let cfg = cfg_of("void f(int n) { do { g(); } while (n); }");
        assert_eq!(natural_loops(&cfg).len(), 1);
    }

    #[test]
    fn dominators_linear_chain() {
        let cfg = cfg_of("void f(void) { a(); b(); }");
        let idom = dominators(&cfg);
        // Entry dominates everything.
        for n in cfg.nodes() {
            if reachable(&cfg)[n.index()] {
                assert!(dominates(&idom, cfg.entry(), n));
            }
        }
    }

    #[test]
    fn goto_and_labels() {
        let cfg = cfg_of("void f(int n) { start: if (n) goto start; end(); }");
        assert_eq!(natural_loops(&cfg).len(), 1);
    }

    #[test]
    fn continue_edge() {
        let cfg =
            cfg_of("void f(int n) { for (int i = 0; i < n; ++i) { if (i % 2) continue; g(i); } }");
        let loops = natural_loops(&cfg);
        assert_eq!(loops.len(), 1);
        let reach = reachable(&cfg);
        assert!(reach.iter().all(|&r| r));
    }

    #[test]
    fn return_goes_to_exit() {
        let cfg = cfg_of("int f(int n) { if (n) return 1; return 0; }");
        // Exit has at least two predecessors (both returns).
        assert!(cfg.preds(cfg.exit()).len() >= 2);
    }

    #[test]
    fn switch_fanout() {
        let cfg = cfg_of(
            "void f(int n) { switch (n) { case 0: a(); break; case 1: b(); break; default: c(); } d(); }",
        );
        let sw = cfg
            .nodes()
            .find(|&n| matches!(cfg.kind(n), NodeKind::Branch))
            .unwrap();
        assert!(cfg.succs(sw).len() >= 3);
    }
}
