//! CFG construction from a function AST.

use crate::graph::{Cfg, EdgeKind, NodeId, NodeKind};
use cocci_cast::ast::*;
use cocci_cast::render;
use cocci_source::Symbol;
use std::collections::HashMap;

/// Build the control-flow graph of a function body.
pub fn build_cfg(f: &FunctionDef) -> Cfg {
    let mut b = Builder {
        g: Cfg::new(),
        break_targets: Vec::new(),
        continue_targets: Vec::new(),
        labels: HashMap::new(),
        pending_gotos: Vec::new(),
    };
    let entry = b.g.entry();
    let exit = b.g.exit();
    let after = b.stmts(&f.body.stmts, entry, EdgeKind::Seq);
    b.connect(after, exit, EdgeKind::Seq);
    // Resolve forward gotos.
    let pending = std::mem::take(&mut b.pending_gotos);
    for (from, label) in pending {
        if let Some(&target) = b.labels.get(&label) {
            b.g.edge(from, target, EdgeKind::Seq);
        } else {
            // Unknown label: fall to exit so the graph stays connected.
            b.g.edge(from, exit, EdgeKind::Seq);
        }
    }
    b.g
}

struct Builder {
    g: Cfg,
    break_targets: Vec<NodeId>,
    continue_targets: Vec<NodeId>,
    labels: HashMap<Symbol, NodeId>,
    pending_gotos: Vec<(NodeId, Symbol)>,
}

/// The "current frontier": the node control flows out of, or `None` when
/// flow has terminated (after return/break/continue/goto).
type Frontier = Option<NodeId>;

impl Builder {
    fn connect(&mut self, from: Frontier, to: NodeId, kind: EdgeKind) {
        if let Some(f) = from {
            self.g.edge(f, to, kind);
        }
    }

    fn stmts(&mut self, stmts: &[Stmt], mut cur: NodeId, mut kind: EdgeKind) -> Frontier {
        let mut frontier = Some(cur);
        for s in stmts {
            match frontier {
                Some(_) => {
                    frontier = self.stmt(s, cur, kind);
                    if let Some(f) = frontier {
                        cur = f;
                        kind = EdgeKind::Seq;
                    }
                }
                None => {
                    // Dead code after a jump: still build nodes (labels may
                    // revive flow) starting from nowhere.
                    let node = self.g.add(NodeKind::Join, "dead", s.span());
                    frontier = self.stmt(s, node, EdgeKind::Seq);
                    if let Some(f) = frontier {
                        cur = f;
                        kind = EdgeKind::Seq;
                    }
                }
            }
        }
        frontier
    }

    fn short(label: &str) -> String {
        let mut s: String = label.chars().take(40).collect();
        if label.len() > 40 {
            s.push('…');
        }
        s
    }

    /// Add `s` to the graph, attached after `pred` via `kind`. Returns the
    /// new frontier.
    fn stmt(&mut self, s: &Stmt, pred: NodeId, kind: EdgeKind) -> Frontier {
        match s {
            Stmt::Expr { .. }
            | Stmt::Decl(_)
            | Stmt::Empty { .. }
            | Stmt::Dots { .. }
            | Stmt::MetaStmt { .. }
            | Stmt::MetaStmtList { .. }
            | Stmt::PatGroup { .. } => {
                let label = Self::short(&render::render_stmt(s));
                let n = self.g.add(NodeKind::Stmt, label, s.span());
                self.g.edge(pred, n, kind);
                Some(n)
            }
            Stmt::Directive(d) => {
                let n = self.g.add(NodeKind::Directive, d.raw.clone(), d.span);
                self.g.edge(pred, n, kind);
                Some(n)
            }
            Stmt::Block(b) => self.stmts(&b.stmts, pred, kind),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => {
                let c = self.g.add(
                    NodeKind::Branch,
                    format!("if ({})", Self::short(&render::render_expr(cond))),
                    *span,
                );
                self.g.edge(pred, c, kind);
                let join = self.g.add(NodeKind::Join, "if-join", *span);
                let t_end = self.stmt(then_branch, c, EdgeKind::True);
                self.connect(t_end, join, EdgeKind::Seq);
                match else_branch {
                    Some(e) => {
                        let e_end = self.stmt(e, c, EdgeKind::False);
                        self.connect(e_end, join, EdgeKind::Seq);
                    }
                    None => self.g.edge(c, join, EdgeKind::False),
                }
                Some(join)
            }
            Stmt::While { cond, body, span } => {
                let header = self.g.add(
                    NodeKind::Branch,
                    format!("while ({})", Self::short(&render::render_expr(cond))),
                    *span,
                );
                self.g.edge(pred, header, kind);
                let exit = self.g.add(NodeKind::Join, "while-exit", *span);
                self.g.edge(header, exit, EdgeKind::False);
                self.break_targets.push(exit);
                self.continue_targets.push(header);
                let b_end = self.stmt(body, header, EdgeKind::True);
                self.connect(b_end, header, EdgeKind::Back);
                self.break_targets.pop();
                self.continue_targets.pop();
                Some(exit)
            }
            Stmt::DoWhile { body, cond, span } => {
                let exit = self.g.add(NodeKind::Join, "do-exit", *span);
                let check = self.g.add(
                    NodeKind::Branch,
                    format!("while ({})", Self::short(&render::render_expr(cond))),
                    *span,
                );
                self.break_targets.push(exit);
                self.continue_targets.push(check);
                // Body entered unconditionally.
                let body_entry = self.g.add(NodeKind::Join, "do-body", *span);
                self.g.edge(pred, body_entry, kind);
                let b_end = self.stmt(body, body_entry, EdgeKind::Seq);
                self.connect(b_end, check, EdgeKind::Seq);
                self.g.edge(check, body_entry, EdgeKind::Back);
                self.g.edge(check, exit, EdgeKind::False);
                self.break_targets.pop();
                self.continue_targets.pop();
                Some(exit)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                span,
                ..
            } => {
                let mut cur = pred;
                let mut k = kind;
                if let Some(i) = init.as_deref() {
                    let label = match i {
                        ForInit::Decl(d) => render::render_decl(d),
                        ForInit::Expr(e) => render::render_expr(e),
                        ForInit::Dots { .. } => "...".to_string(),
                    };
                    let n = self.g.add(NodeKind::Stmt, Self::short(&label), *span);
                    self.g.edge(cur, n, k);
                    cur = n;
                    k = EdgeKind::Seq;
                }
                let header_label = cond
                    .as_ref()
                    .map(|c| format!("for ({})", Self::short(&render::render_expr(c))))
                    .unwrap_or_else(|| "for (;;)".to_string());
                let header = self.g.add(NodeKind::Branch, header_label, *span);
                self.g.edge(cur, header, k);
                let exit = self.g.add(NodeKind::Join, "for-exit", *span);
                if cond.is_some() {
                    self.g.edge(header, exit, EdgeKind::False);
                }
                let step_node = self.g.add(
                    NodeKind::Stmt,
                    step.as_ref()
                        .map(|e| Self::short(&render::render_expr(e)))
                        .unwrap_or_else(|| "step".to_string()),
                    *span,
                );
                self.break_targets.push(exit);
                self.continue_targets.push(step_node);
                let b_end = self.stmt(body, header, EdgeKind::True);
                self.connect(b_end, step_node, EdgeKind::Seq);
                self.g.edge(step_node, header, EdgeKind::Back);
                self.break_targets.pop();
                self.continue_targets.pop();
                Some(exit)
            }
            Stmt::RangeFor { body, span, .. } => {
                let header = self.g.add(NodeKind::Branch, "range-for", *span);
                self.g.edge(pred, header, kind);
                let exit = self.g.add(NodeKind::Join, "for-exit", *span);
                self.g.edge(header, exit, EdgeKind::False);
                self.break_targets.push(exit);
                self.continue_targets.push(header);
                let b_end = self.stmt(body, header, EdgeKind::True);
                self.connect(b_end, header, EdgeKind::Back);
                self.break_targets.pop();
                self.continue_targets.pop();
                Some(exit)
            }
            Stmt::Return { span, .. } => {
                let n = self.g.add(NodeKind::Stmt, "return", *span);
                self.g.edge(pred, n, kind);
                let exit = self.g.exit();
                self.g.edge(n, exit, EdgeKind::Seq);
                None
            }
            Stmt::Break { span } => {
                let n = self.g.add(NodeKind::Stmt, "break", *span);
                self.g.edge(pred, n, kind);
                if let Some(&t) = self.break_targets.last() {
                    self.g.edge(n, t, EdgeKind::Seq);
                }
                None
            }
            Stmt::Continue { span } => {
                let n = self.g.add(NodeKind::Stmt, "continue", *span);
                self.g.edge(pred, n, kind);
                if let Some(&t) = self.continue_targets.last() {
                    self.g.edge(n, t, EdgeKind::Seq);
                }
                None
            }
            Stmt::Goto { label, span } => {
                let n = self
                    .g
                    .add(NodeKind::Stmt, format!("goto {}", label.name), *span);
                self.g.edge(pred, n, kind);
                self.pending_gotos.push((n, label.name));
                None
            }
            Stmt::Label { label, stmt, span } => {
                let n = self
                    .g
                    .add(NodeKind::Join, format!("{}:", label.name), *span);
                self.g.edge(pred, n, kind);
                self.labels.insert(label.name, n);
                self.stmt(stmt, n, EdgeKind::Seq)
            }
            Stmt::Switch {
                scrutinee,
                body,
                span,
            } => {
                let sw = self.g.add(
                    NodeKind::Branch,
                    format!("switch ({})", Self::short(&render::render_expr(scrutinee))),
                    *span,
                );
                self.g.edge(pred, sw, kind);
                let exit = self.g.add(NodeKind::Join, "switch-exit", *span);
                self.break_targets.push(exit);
                // Flatten the switch body: each `case` gets an edge from
                // the switch head; fallthrough connects consecutive cases.
                let mut frontier: Frontier = None;
                let mut has_default = false;
                if let Stmt::Block(b) = body.as_ref() {
                    for s in &b.stmts {
                        if let Stmt::Case { value, stmt, span } = s {
                            if value.is_none() {
                                has_default = true;
                            }
                            let c = self.g.add(
                                NodeKind::Join,
                                value
                                    .as_ref()
                                    .map(|v| format!("case {}", render::render_expr(v)))
                                    .unwrap_or_else(|| "default".to_string()),
                                *span,
                            );
                            self.g.edge(sw, c, EdgeKind::True);
                            self.connect(frontier, c, EdgeKind::Seq);
                            frontier = self.stmt(stmt, c, EdgeKind::Seq);
                        } else if frontier.is_some() {
                            frontier = self.stmt(s, frontier.unwrap(), EdgeKind::Seq);
                        }
                    }
                } else {
                    frontier = self.stmt(body, sw, EdgeKind::True);
                }
                self.connect(frontier, exit, EdgeKind::Seq);
                if !has_default {
                    self.g.edge(sw, exit, EdgeKind::False);
                }
                self.break_targets.pop();
                Some(exit)
            }
            Stmt::Case { stmt, span, .. } => {
                // Case outside a switch body (unusual); treat as label.
                let n = self.g.add(NodeKind::Join, "case", *span);
                self.g.edge(pred, n, kind);
                self.stmt(stmt, n, EdgeKind::Seq)
            }
        }
    }
}
