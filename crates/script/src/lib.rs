//! `cocci-script`: interpreter for script rules.
//!
//! Coccinelle embeds Python/OCaml for its `@script:python@` rules; this
//! workspace has no CPython, so we interpret the Python *subset* those
//! rules actually use (see DESIGN.md, substitution table). Supported:
//!
//! * assignments `name = expr` and `coccinelle.name = expr`
//! * string and integer literals, names
//! * dict literals `{ "k": "v", … }` (multi-line)
//! * subscripts `d[k]` / `l[0]`, attribute access `a.b`, calls `f(x, y)`
//! * `+` (string concatenation / integer addition)
//! * the `cocci` builtins: `make_ident`, `make_type`, `make_pragmainfo`,
//!   `make_expr` (all wrap a string for the engine to splice), plus
//!   `str`, `len`, `print` (to stderr)
//! * the `coccilib.report` subset: inherited position metavariables
//!   arrive as lists of position objects (`p[0].file`, `p[0].line`,
//!   `p[0].column`), and `coccilib.report.print_report(p[0], msg)`
//!   records a finding the engine surfaces through report mode
//! * `\`-continuations, `#`/`//` comments, optional trailing `;`
//!
//! Execution model matches Coccinelle's: `@initialize@` blocks populate a
//! *global* environment once; each `@script@` rule runs once per match
//! environment of its parent rules, reading inherited metavariables and
//! writing new bindings through `coccinelle.<name> = …`. A runtime error
//! (for instance a dictionary lookup miss, the idiomatic way the CUDA→HIP
//! patch skips functions it has no translation for) makes that
//! environment produce no output, which the engine treats as "rule does
//! not apply here".

use std::collections::BTreeMap;
use std::fmt;

/// A script value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string (also the representation of idents/types/pragmainfo made
    /// by the `cocci.make_*` builtins).
    Str(String),
    /// An integer.
    Int(i64),
    /// A dictionary with string keys.
    Dict(BTreeMap<String, Value>),
    /// A list (chiefly: the list of position objects an inherited
    /// `position` metavariable arrives as).
    List(Vec<Value>),
    /// A source position (`p[0]` of an inherited position metavariable)
    /// with `.file`, `.line`, `.column` (and `.line_end`/`.column_end`)
    /// attributes.
    Pos(PosInfo),
    /// Python's `None`.
    None,
}

/// The payload of a position object handed to script rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PosInfo {
    /// Target file name.
    pub file: String,
    /// 1-based start line.
    pub line: i64,
    /// 1-based start column.
    pub column: i64,
    /// 1-based end line.
    pub line_end: i64,
    /// 1-based end column.
    pub column_end: i64,
}

/// One `coccilib.report.print_report(pos, msg)` call recorded during a
/// script run, for the engine to convert into a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Where the finding points.
    pub pos: PosInfo,
    /// The authored message.
    pub message: String,
}

impl Value {
    /// Render the value as the text the engine will splice into code.
    pub fn render(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::Dict(_) => "<dict>".to_string(),
            Value::List(items) => items
                .iter()
                .map(Value::render)
                .collect::<Vec<_>>()
                .join(", "),
            Value::Pos(p) => format!("{}:{}:{}", p.file, p.line, p.column),
            Value::None => "None".to_string(),
        }
    }
}

/// Script runtime/parse error.
#[derive(Debug, Clone)]
pub struct ScriptError {
    /// Description.
    pub message: String,
    /// True for errors that should *skip the environment* rather than
    /// abort the whole patch (missing dict key — the translation-table
    /// idiom).
    pub skip_env: bool,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "script error: {}", self.message)
    }
}

impl std::error::Error for ScriptError {}

fn serr(message: impl Into<String>) -> ScriptError {
    ScriptError {
        message: message.into(),
        skip_env: false,
    }
}

/// The interpreter. Holds the global environment shared by all script
/// rules of one semantic patch application.
#[derive(Debug, Default, Clone)]
pub struct Interp {
    globals: BTreeMap<String, Value>,
    reports: Vec<Report>,
}

impl Interp {
    /// Fresh interpreter with empty globals.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read a global (for tests and diagnostics).
    pub fn global(&self, name: &str) -> Option<&Value> {
        self.globals.get(name)
    }

    /// Drain the `coccilib.report.print_report` calls recorded since the
    /// last drain (the engine converts them into findings).
    pub fn take_reports(&mut self) -> Vec<Report> {
        std::mem::take(&mut self.reports)
    }

    /// Run an `@initialize@` block: statements execute against the global
    /// environment.
    pub fn run_block(&mut self, code: &str) -> Result<(), ScriptError> {
        let stmts = parse_program(code)?;
        let mut locals = BTreeMap::new();
        let mut outputs = BTreeMap::new();
        for s in &stmts {
            self.exec(s, &mut locals, &mut outputs, true)?;
        }
        Ok(())
    }

    /// Run a script rule body with `inputs` as local bindings. Returns the
    /// `coccinelle.<name>` assignments. `Ok(None)` means the environment
    /// should be skipped (dict-miss idiom).
    pub fn run_script(
        &mut self,
        code: &str,
        inputs: &BTreeMap<String, Value>,
    ) -> Result<Option<BTreeMap<String, Value>>, ScriptError> {
        let stmts = parse_program(code)?;
        let mut locals = inputs.clone();
        let mut outputs = BTreeMap::new();
        for s in &stmts {
            match self.exec(s, &mut locals, &mut outputs, false) {
                Ok(()) => {}
                Err(e) if e.skip_env => return Ok(None),
                Err(e) => return Err(e),
            }
        }
        Ok(Some(outputs))
    }

    fn exec(
        &mut self,
        stmt: &StmtNode,
        locals: &mut BTreeMap<String, Value>,
        outputs: &mut BTreeMap<String, Value>,
        global_scope: bool,
    ) -> Result<(), ScriptError> {
        match stmt {
            StmtNode::Assign { target, value } => {
                let v = self.eval(value, locals)?;
                match target {
                    Target::Name(n) => {
                        if global_scope {
                            self.globals.insert(n.clone(), v);
                        } else {
                            locals.insert(n.clone(), v);
                        }
                    }
                    Target::Coccinelle(n) => {
                        outputs.insert(n.clone(), v);
                    }
                }
                Ok(())
            }
            StmtNode::Expr(e) => {
                self.eval(e, locals)?;
                Ok(())
            }
        }
    }

    fn eval(
        &mut self,
        e: &ExprNode,
        locals: &BTreeMap<String, Value>,
    ) -> Result<Value, ScriptError> {
        match e {
            ExprNode::Str(s) => Ok(Value::Str(s.clone())),
            ExprNode::Int(i) => Ok(Value::Int(*i)),
            ExprNode::NoneLit => Ok(Value::None),
            ExprNode::Name(n) => locals
                .get(n)
                .or_else(|| self.globals.get(n))
                .cloned()
                .ok_or_else(|| serr(format!("undefined name `{n}`"))),
            ExprNode::Dict(pairs) => {
                let mut m = BTreeMap::new();
                for (k, v) in pairs {
                    let kv = self.eval(k, locals)?;
                    let vv = self.eval(v, locals)?;
                    let key = match kv {
                        Value::Str(s) => s,
                        other => other.render(),
                    };
                    m.insert(key, vv);
                }
                Ok(Value::Dict(m))
            }
            ExprNode::Subscript { base, index } => {
                let b = self.eval(base, locals)?;
                let i = self.eval(index, locals)?;
                match b {
                    Value::Dict(m) => {
                        let key = match &i {
                            Value::Str(s) => s.clone(),
                            other => other.render(),
                        };
                        m.get(&key).cloned().ok_or(ScriptError {
                            message: format!("KeyError: '{key}'"),
                            skip_env: true,
                        })
                    }
                    Value::Str(s) => match i {
                        Value::Int(idx) if idx >= 0 && (idx as usize) < s.len() => {
                            Ok(Value::Str(s[idx as usize..idx as usize + 1].to_string()))
                        }
                        _ => Err(serr("bad string index")),
                    },
                    Value::List(items) => match i {
                        Value::Int(idx) if idx >= 0 && (idx as usize) < items.len() => {
                            Ok(items[idx as usize].clone())
                        }
                        _ => Err(serr("list index out of range")),
                    },
                    other => Err(serr(format!("cannot index {other:?}"))),
                }
            }
            ExprNode::Attr { base, field } => {
                let b = self.eval(base, locals)?;
                match b {
                    Value::Pos(p) => match field.as_str() {
                        "file" => Ok(Value::Str(p.file.clone())),
                        "line" => Ok(Value::Int(p.line)),
                        "column" => Ok(Value::Int(p.column)),
                        "line_end" => Ok(Value::Int(p.line_end)),
                        "column_end" => Ok(Value::Int(p.column_end)),
                        other => Err(serr(format!("position has no attribute `{other}`"))),
                    },
                    other => Err(serr(format!(
                        "attribute `{field}` unsupported on {other:?}"
                    ))),
                }
            }
            ExprNode::Add(a, b) => {
                let av = self.eval(a, locals)?;
                let bv = self.eval(b, locals)?;
                match (av, bv) {
                    (Value::Str(x), Value::Str(y)) => Ok(Value::Str(x + &y)),
                    (Value::Str(x), y) => Ok(Value::Str(x + &y.render())),
                    (x @ Value::Int(_), Value::Str(y)) => Ok(Value::Str(x.render() + &y)),
                    (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x + y)),
                    _ => Err(serr("unsupported `+` operands")),
                }
            }
            ExprNode::Call { func, args } => {
                let mut vals = Vec::new();
                for a in args {
                    vals.push(self.eval(a, locals)?);
                }
                self.call(func, vals)
            }
        }
    }

    fn call(&mut self, func: &FuncRef, args: Vec<Value>) -> Result<Value, ScriptError> {
        let one = |args: &[Value]| -> Result<Value, ScriptError> {
            if args.len() == 1 {
                Ok(args[0].clone())
            } else {
                Err(serr("expected exactly one argument"))
            }
        };
        match func {
            FuncRef::Cocci(name) => match name.as_str() {
                // All make_* builtins wrap their argument as engine text.
                "make_ident" | "make_type" | "make_pragmainfo" | "make_expr" | "make_stmt" => {
                    let v = one(&args)?;
                    Ok(Value::Str(v.render()))
                }
                other => Err(serr(format!("unknown cocci builtin `{other}`"))),
            },
            FuncRef::CoccilibReport(name) => match name.as_str() {
                "print_report" => {
                    let [pos, msg] = args.as_slice() else {
                        return Err(serr("print_report takes (position, message)"));
                    };
                    let Value::Pos(p) = pos else {
                        return Err(serr(
                            "print_report: first argument must be a position (p[0])",
                        ));
                    };
                    self.reports.push(Report {
                        pos: p.clone(),
                        message: msg.render(),
                    });
                    Ok(Value::None)
                }
                other => Err(serr(format!("unknown coccilib.report function `{other}`"))),
            },
            FuncRef::Bare(name) => match name.as_str() {
                "str" => Ok(Value::Str(one(&args)?.render())),
                "len" => match one(&args)? {
                    Value::Str(s) => Ok(Value::Int(s.len() as i64)),
                    Value::Dict(d) => Ok(Value::Int(d.len() as i64)),
                    Value::List(l) => Ok(Value::Int(l.len() as i64)),
                    _ => Err(serr("len() of unsupported value")),
                },
                "print" => {
                    let text: Vec<String> = args.iter().map(Value::render).collect();
                    eprintln!("{}", text.join(" "));
                    Ok(Value::None)
                }
                other => Err(serr(format!("unknown function `{other}`"))),
            },
        }
    }
}

// ---- parsing ----

#[derive(Debug, Clone)]
enum StmtNode {
    Assign { target: Target, value: ExprNode },
    Expr(ExprNode),
}

#[derive(Debug, Clone)]
enum Target {
    Name(String),
    Coccinelle(String),
}

#[derive(Debug, Clone)]
enum ExprNode {
    Str(String),
    Int(i64),
    NoneLit,
    Name(String),
    Dict(Vec<(ExprNode, ExprNode)>),
    Subscript {
        base: Box<ExprNode>,
        index: Box<ExprNode>,
    },
    Attr {
        base: Box<ExprNode>,
        field: String,
    },
    Add(Box<ExprNode>, Box<ExprNode>),
    Call {
        func: FuncRef,
        args: Vec<ExprNode>,
    },
}

#[derive(Debug, Clone)]
enum FuncRef {
    /// `cocci.<name>(…)`
    Cocci(String),
    /// `coccilib.report.<name>(…)`
    CoccilibReport(String),
    /// bare `<name>(…)`
    Bare(String),
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Str(String),
    Int(i64),
    Name(String),
    Punct(char),
}

fn tokenize(code: &str) -> Result<Vec<Tok>, ScriptError> {
    let b = code.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'\\' if i + 1 < b.len() && b[i + 1] == b'\n' => i += 2,
            b'#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'"' | b'\'' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= b.len() {
                        return Err(serr("unterminated string"));
                    }
                    if b[i] == b'\\' && i + 1 < b.len() {
                        s.push(match b[i + 1] {
                            b'n' => '\n',
                            b't' => '\t',
                            other => other as char,
                        });
                        i += 2;
                        continue;
                    }
                    if b[i] == quote {
                        i += 1;
                        break;
                    }
                    s.push(b[i] as char);
                    i += 1;
                }
                out.push(Tok::Str(s));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let v: i64 = code[start..i]
                    .parse()
                    .map_err(|_| serr("bad integer literal"))?;
                out.push(Tok::Int(v));
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.push(Tok::Name(code[start..i].to_string()));
            }
            b'=' | b'+' | b'[' | b']' | b'{' | b'}' | b'(' | b')' | b',' | b':' | b'.' | b';' => {
                out.push(Tok::Punct(c as char));
                i += 1;
            }
            other => {
                return Err(serr(format!(
                    "unexpected character `{}` in script",
                    other as char
                )))
            }
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, p: char) -> bool {
        if self.peek() == Some(&Tok::Punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, p: char) -> Result<(), ScriptError> {
        if self.eat(p) {
            Ok(())
        } else {
            Err(serr(format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    fn stmt(&mut self) -> Result<StmtNode, ScriptError> {
        // Lookahead for `name = …` / `coccinelle.name = …` assignment.
        if let Some(Tok::Name(n)) = self.peek().cloned() {
            if n == "coccinelle" && self.toks.get(self.pos + 1) == Some(&Tok::Punct('.')) {
                if let (Some(Tok::Name(field)), Some(&Tok::Punct('='))) = (
                    self.toks.get(self.pos + 2).cloned(),
                    self.toks.get(self.pos + 3),
                ) {
                    self.pos += 4;
                    let value = self.expr()?;
                    self.eat(';');
                    return Ok(StmtNode::Assign {
                        target: Target::Coccinelle(field),
                        value,
                    });
                }
            }
            if self.toks.get(self.pos + 1) == Some(&Tok::Punct('=')) {
                self.pos += 2;
                let value = self.expr()?;
                self.eat(';');
                return Ok(StmtNode::Assign {
                    target: Target::Name(n),
                    value,
                });
            }
        }
        let e = self.expr()?;
        self.eat(';');
        Ok(StmtNode::Expr(e))
    }

    fn expr(&mut self) -> Result<ExprNode, ScriptError> {
        let mut lhs = self.postfix()?;
        while self.eat('+') {
            let rhs = self.postfix()?;
            lhs = ExprNode::Add(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn postfix(&mut self) -> Result<ExprNode, ScriptError> {
        let mut e = self.primary()?;
        loop {
            if self.eat('[') {
                let idx = self.expr()?;
                self.expect(']')?;
                e = ExprNode::Subscript {
                    base: Box::new(e),
                    index: Box::new(idx),
                };
            } else if self.eat('.') {
                let field = match self.bump() {
                    Some(Tok::Name(n)) => n,
                    other => return Err(serr(format!("expected attribute name, found {other:?}"))),
                };
                if self.eat('(') {
                    let args = self.args()?;
                    let func = match &e {
                        ExprNode::Name(n) if n == "cocci" || n == "coccinelle" => {
                            FuncRef::Cocci(field)
                        }
                        ExprNode::Attr { base, field: mid }
                            if mid == "report"
                                && matches!(base.as_ref(),
                                            ExprNode::Name(n) if n == "coccilib") =>
                        {
                            FuncRef::CoccilibReport(field)
                        }
                        _ => {
                            return Err(serr(format!(
                                "method calls only supported on `cocci` and \
                                 `coccilib.report`, not `.{field}` here"
                            )))
                        }
                    };
                    e = ExprNode::Call { func, args };
                } else {
                    // Plain attribute access (`p[0].file`, the
                    // `coccilib.report` path prefix); resolved at eval
                    // or consumed by a trailing call.
                    e = ExprNode::Attr {
                        base: Box::new(e),
                        field,
                    };
                }
            } else if self.eat('(') {
                let args = self.args()?;
                let func = match &e {
                    ExprNode::Name(n) => FuncRef::Bare(n.clone()),
                    _ => return Err(serr("only simple function calls supported")),
                };
                e = ExprNode::Call { func, args };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn args(&mut self) -> Result<Vec<ExprNode>, ScriptError> {
        let mut args = Vec::new();
        if self.eat(')') {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if self.eat(',') {
                continue;
            }
            self.expect(')')?;
            break;
        }
        Ok(args)
    }

    fn primary(&mut self) -> Result<ExprNode, ScriptError> {
        match self.bump() {
            Some(Tok::Str(s)) => Ok(ExprNode::Str(s)),
            Some(Tok::Int(i)) => Ok(ExprNode::Int(i)),
            Some(Tok::Name(n)) if n == "None" => Ok(ExprNode::NoneLit),
            Some(Tok::Name(n)) => Ok(ExprNode::Name(n)),
            Some(Tok::Punct('(')) => {
                let e = self.expr()?;
                self.expect(')')?;
                Ok(e)
            }
            Some(Tok::Punct('{')) => {
                let mut pairs = Vec::new();
                if self.eat('}') {
                    return Ok(ExprNode::Dict(pairs));
                }
                loop {
                    let k = self.expr()?;
                    self.expect(':')?;
                    let v = self.expr()?;
                    pairs.push((k, v));
                    if self.eat(',') {
                        if self.eat('}') {
                            break;
                        }
                        continue;
                    }
                    self.expect('}')?;
                    break;
                }
                Ok(ExprNode::Dict(pairs))
            }
            other => Err(serr(format!("unexpected token {other:?}"))),
        }
    }
}

fn parse_program(code: &str) -> Result<Vec<StmtNode>, ScriptError> {
    let toks = tokenize(code)?;
    let mut p = P { toks, pos: 0 };
    let mut out = Vec::new();
    while p.peek().is_some() {
        out.push(p.stmt()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(pairs: &[(&str, &str)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), Value::Str(v.to_string())))
            .collect()
    }

    #[test]
    fn initialize_dict_then_lookup() {
        let mut it = Interp::new();
        it.run_block("C2HF = { \"curand_uniform_double\":\n  \"rocrand_uniform_double\" }")
            .unwrap();
        let out = it
            .run_script(
                "coccinelle.nf = cocci.make_ident(C2HF[fn]);",
                &inputs(&[("fn", "curand_uniform_double")]),
            )
            .unwrap()
            .unwrap();
        assert_eq!(
            out.get("nf"),
            Some(&Value::Str("rocrand_uniform_double".into()))
        );
    }

    #[test]
    fn dict_miss_skips_environment() {
        let mut it = Interp::new();
        it.run_block("D = { \"a\": \"b\" }").unwrap();
        let out = it
            .run_script(
                "coccinelle.nf = cocci.make_ident(D[fn]);",
                &inputs(&[("fn", "not_there")]),
            )
            .unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn string_concatenation() {
        let mut it = Interp::new();
        let out = it
            .run_script(
                "coccinelle.lb = \"KOKKOS_LAMBDA(const int i)\" + fb;",
                &inputs(&[("fb", "{ y[i] = a*x[i]; }")]),
            )
            .unwrap()
            .unwrap();
        assert_eq!(
            out.get("lb").unwrap().render(),
            "KOKKOS_LAMBDA(const int i){ y[i] = a*x[i]; }"
        );
    }

    #[test]
    fn make_pragmainfo_hardcoded() {
        let mut it = Interp::new();
        let out = it
            .run_script(
                "coccinelle.po =\n cocci.make_pragmainfo\n (\"kernels copy(a)\");",
                &BTreeMap::new(),
            )
            .unwrap()
            .unwrap();
        assert_eq!(out.get("po").unwrap().render(), "kernels copy(a)");
    }

    #[test]
    fn locals_shadow_globals_and_persist_within_script() {
        let mut it = Interp::new();
        it.run_block("x = \"global\"").unwrap();
        let out = it
            .run_script("x = \"local\"\ncoccinelle.out = x;", &BTreeMap::new())
            .unwrap()
            .unwrap();
        assert_eq!(out.get("out").unwrap().render(), "local");
        assert_eq!(it.global("x").unwrap().render(), "global");
    }

    #[test]
    fn comments_and_continuations() {
        let mut it = Interp::new();
        it.run_block("# leading comment\nT = { \"__half\": \\\n \"rocblas_half\" } // trailing\n")
            .unwrap();
        match it.global("T").unwrap() {
            Value::Dict(d) => assert_eq!(d.get("__half").unwrap().render(), "rocblas_half"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn int_arithmetic_and_builtins() {
        let mut it = Interp::new();
        let out = it
            .run_script(
                "n = 1 + 2\ncoccinelle.s = str(n) + \"_x\";\ncoccinelle.l = len(\"abc\");",
                &BTreeMap::new(),
            )
            .unwrap()
            .unwrap();
        assert_eq!(out.get("s").unwrap().render(), "3_x");
        assert_eq!(out.get("l"), Some(&Value::Int(3)));
    }

    #[test]
    fn undefined_name_is_hard_error() {
        let mut it = Interp::new();
        let r = it.run_script("coccinelle.x = nope;", &BTreeMap::new());
        assert!(r.is_err());
    }

    #[test]
    fn multiline_translation_table() {
        // The full-table idiom from the CUDA→HIP use case.
        let mut it = Interp::new();
        it.run_block(
            "C2HF = {\n  \"cudaMalloc\": \"hipMalloc\",\n  \"cudaFree\": \"hipFree\",\n  \"cudaMemcpy\": \"hipMemcpy\",\n}",
        )
        .unwrap();
        for (c, h) in [
            ("cudaMalloc", "hipMalloc"),
            ("cudaFree", "hipFree"),
            ("cudaMemcpy", "hipMemcpy"),
        ] {
            let out = it
                .run_script(
                    "coccinelle.nf = cocci.make_ident(C2HF[fn]);",
                    &inputs(&[("fn", c)]),
                )
                .unwrap()
                .unwrap();
            assert_eq!(out.get("nf").unwrap().render(), h);
        }
    }

    fn pos(file: &str, line: i64, col: i64) -> Value {
        Value::Pos(PosInfo {
            file: file.into(),
            line,
            column: col,
            line_end: line,
            column_end: col + 7,
        })
    }

    #[test]
    fn print_report_records_findings() {
        let mut it = Interp::new();
        let mut ins = inputs(&[("e", "q + 1")]);
        ins.insert("p".to_string(), Value::List(vec![pos("src/a.c", 3, 5)]));
        let out = it
            .run_script(
                "coccilib.report.print_report(p[0], \"old_api called with \" + e)",
                &ins,
            )
            .unwrap()
            .unwrap();
        assert!(out.is_empty(), "print_report writes no bindings");
        let reports = it.take_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].pos.file, "src/a.c");
        assert_eq!(reports[0].pos.line, 3);
        assert_eq!(reports[0].pos.column, 5);
        assert_eq!(reports[0].message, "old_api called with q + 1");
        assert!(it.take_reports().is_empty(), "drained");
    }

    #[test]
    fn position_attribute_access() {
        let mut it = Interp::new();
        let mut ins = BTreeMap::new();
        ins.insert("p".to_string(), Value::List(vec![pos("b.c", 12, 9)]));
        let out = it
            .run_script(
                "coccilib.report.print_report(p[0], p[0].file + \":\" + str(p[0].line) + \":\" + str(p[0].column))\ncoccinelle.out = str(len(p));",
                &ins,
            )
            .unwrap()
            .unwrap();
        assert_eq!(out.get("out").unwrap().render(), "1");
        let reports = it.take_reports();
        assert_eq!(reports[0].message, "b.c:12:9");
    }

    #[test]
    fn print_report_requires_a_position() {
        let mut it = Interp::new();
        let err = it
            .run_script(
                "coccilib.report.print_report(\"not a pos\", \"msg\")",
                &BTreeMap::new(),
            )
            .unwrap_err();
        assert!(err.message.contains("position"), "{err}");
        // Unknown coccilib.report functions are hard errors too.
        let err = it
            .run_script("coccilib.report.bogus(1)", &BTreeMap::new())
            .unwrap_err();
        assert!(err.message.contains("bogus"), "{err}");
    }

    #[test]
    fn trailing_dict_comma_and_empty_dict() {
        let mut it = Interp::new();
        it.run_block("A = {}\nB = { \"x\": \"y\", }").unwrap();
        assert_eq!(it.global("A"), Some(&Value::Dict(BTreeMap::new())));
        match it.global("B").unwrap() {
            Value::Dict(d) => assert_eq!(d.len(), 1),
            other => panic!("{other:?}"),
        }
    }
}
